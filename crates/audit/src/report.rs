//! Conformance report model and its JSON rendering.
//!
//! The scenario matrix flattens every audit into `CheckResult` rows grouped
//! by scenario; the whole report serializes to a single JSON document
//! (`results/audit_conformance.json`) that CI archives and the regression
//! gate inspects. JSON is hand-rolled like `dpsc_bench::Table::to_json`
//! (the build environment has no `serde`).

use std::fmt::Write as _;

/// One audited quantity with its bound and verdict.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// Check identifier, e.g. `utility_max_error` or `ks_distance`.
    pub name: String,
    /// The observed statistic.
    pub observed: f64,
    /// The bound it is held against (conformance ⇔ observed within bound,
    /// in the direction the check defines).
    pub bound: f64,
    /// Verdict.
    pub pass: bool,
    /// Free-form context (event description, trial counts, …).
    pub detail: String,
}

impl CheckResult {
    /// Convenience constructor.
    pub fn new(name: &str, observed: f64, bound: f64, pass: bool, detail: String) -> Self {
        Self { name: name.to_string(), observed, bound, pass, detail }
    }
}

/// All checks for one point of the scenario matrix.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Workload name (`random`, `markov`, `dna`, `transit`) or audit group
    /// (`noise`, `adversarial`).
    pub workload: String,
    /// Mechanism (`laplace` / `gaussian`).
    pub mechanism: String,
    /// Declared ε of the scenario.
    pub epsilon: f64,
    /// Pruning configuration (`off` / `analytic`) or `-` where not
    /// applicable.
    pub pruning: String,
    /// The individual check verdicts.
    pub checks: Vec<CheckResult>,
}

impl ScenarioResult {
    /// Number of failed checks in this scenario.
    pub fn violations(&self) -> usize {
        self.checks.iter().filter(|c| !c.pass).count()
    }
}

/// The complete conformance report for one matrix run.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// `fast` or `full`.
    pub tier: String,
    /// Base seed every audit derives its RNG streams from.
    pub seed: u64,
    /// All scenario results.
    pub scenarios: Vec<ScenarioResult>,
}

impl ConformanceReport {
    /// Total number of individual checks.
    pub fn total_checks(&self) -> usize {
        self.scenarios.iter().map(|s| s.checks.len()).sum()
    }

    /// Total number of failed checks.
    pub fn violations(&self) -> usize {
        self.scenarios.iter().map(ScenarioResult::violations).sum()
    }

    /// Whether the whole matrix conformed.
    pub fn pass(&self) -> bool {
        self.violations() == 0
    }

    /// Lines describing each failed check (empty when conformant).
    pub fn violation_lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        for s in &self.scenarios {
            for c in s.checks.iter().filter(|c| !c.pass) {
                out.push(format!(
                    "{}/{} ε={} pruning={}: {} observed {:.4} vs bound {:.4} ({})",
                    s.workload,
                    s.mechanism,
                    s.epsilon,
                    s.pruning,
                    c.name,
                    c.observed,
                    c.bound,
                    c.detail
                ));
            }
        }
        out
    }

    /// Renders the report as pretty-printed JSON (RFC 8259 escaping).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"dpsc-audit-v1\",");
        let _ = writeln!(out, "  \"tier\": {},", esc(&self.tier));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"total_checks\": {},", self.total_checks());
        let _ = writeln!(out, "  \"violations\": {},", self.violations());
        let _ = writeln!(out, "  \"pass\": {},", self.pass());
        out.push_str("  \"scenarios\": [");
        for (i, s) in self.scenarios.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"workload\": {},", esc(&s.workload));
            let _ = writeln!(out, "      \"mechanism\": {},", esc(&s.mechanism));
            let _ = writeln!(out, "      \"epsilon\": {},", num(s.epsilon));
            let _ = writeln!(out, "      \"pruning\": {},", esc(&s.pruning));
            out.push_str("      \"checks\": [");
            for (j, c) in s.checks.iter().enumerate() {
                out.push_str(if j == 0 { "\n" } else { ",\n" });
                let _ = write!(
                    out,
                    "        {{\"name\": {}, \"observed\": {}, \"bound\": {}, \"pass\": {}, \"detail\": {}}}",
                    esc(&c.name),
                    num(c.observed),
                    num(c.bound),
                    c.pass,
                    esc(&c.detail)
                );
            }
            out.push_str("\n      ]\n    }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// JSON string escaping per RFC 8259.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number rendering: finite floats as-is, non-finite as null (JSON has
/// no NaN/Inf).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_report() -> ConformanceReport {
        ConformanceReport {
            tier: "fast".to_string(),
            seed: 42,
            scenarios: vec![ScenarioResult {
                workload: "markov".to_string(),
                mechanism: "laplace".to_string(),
                epsilon: 1.0,
                pruning: "off".to_string(),
                checks: vec![
                    CheckResult::new("utility_max_error", 10.0, 20.0, true, "3 trials".into()),
                    CheckResult::new("ks \"quoted\"", f64::NAN, 0.01, false, "line\nbreak".into()),
                ],
            }],
        }
    }

    #[test]
    fn counting_and_verdicts() {
        let r = toy_report();
        assert_eq!(r.total_checks(), 2);
        assert_eq!(r.violations(), 1);
        assert!(!r.pass());
        assert_eq!(r.violation_lines().len(), 1);
        assert!(r.violation_lines()[0].contains("ks"));
    }

    #[test]
    fn json_is_escaped_and_structured() {
        let j = toy_report().to_json();
        assert!(j.contains("\"schema\": \"dpsc-audit-v1\""));
        assert!(j.contains("\"violations\": 1"));
        assert!(j.contains("\\\"quoted\\\""), "quotes escaped");
        assert!(j.contains("line\\nbreak"), "newlines escaped");
        assert!(j.contains("\"observed\": null"), "NaN becomes null");
        // Balanced braces/brackets (cheap well-formedness proxy; the full
        // parse is exercised by the python check in CI).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn empty_report_passes() {
        let r = ConformanceReport { tier: "fast".into(), seed: 1, scenarios: vec![] };
        assert!(r.pass());
        assert!(r.to_json().contains("\"scenarios\": [\n  ]"));
    }
}
