//! Layer 1a: distribution audits for [`dpsc_dpcore::noise`].
//!
//! The privacy theorems are only as good as the samplers: a Laplace drawn
//! at the wrong scale (or a Box–Muller with a lost √2) silently voids every
//! ε in the repository. [`audit_noise_distribution`] certifies a sampler
//! against its *closed-form* CDF with a seeded Kolmogorov–Smirnov test plus
//! moment and tail-rate checks, so a calibration regression turns into a
//! red conformance report instead of a quietly-wrong release.

use dpsc_dpcore::noise::Noise;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::stats::{gaussian_cdf, ks_critical, ks_statistic, laplace_cdf, mean_var};

/// Result of a goodness-of-fit audit of one [`Noise`] distribution.
#[derive(Debug, Clone)]
pub struct GofCheck {
    /// Human-readable mechanism label, e.g. `laplace(b=3)`.
    pub mechanism: String,
    /// Number of samples drawn.
    pub n: usize,
    /// Observed KS statistic against the closed-form CDF.
    pub ks: f64,
    /// DKW critical value at the audit's significance level.
    pub ks_crit: f64,
    /// Observed sample mean (distributions are centered; must be ≈ 0).
    pub mean: f64,
    /// Allowed |mean| deviation (z·σ/√n).
    pub mean_tol: f64,
    /// Observed/expected variance ratio (must be ≈ 1).
    pub var_ratio: f64,
    /// Allowed |var_ratio − 1| deviation.
    pub var_tol: f64,
    /// Observed exceedance rate of [`Noise::tail_bound`] at `tail_beta`.
    pub tail_rate: f64,
    /// The β the tail bound was instantiated at.
    pub tail_beta: f64,
    /// Allowed tail rate (β plus binomial sampling slack).
    pub tail_allowed: f64,
    /// Whether every sub-check passed.
    pub pass: bool,
}

/// Significance level per sub-check. Four sub-checks per audited
/// distribution (KS, mean, variance, tail) ⇒ false-positive rate ≤ 4e-4
/// per audit *if the seeds were fresh*; with the fixed seeds the audits
/// are deterministic and the level only describes how surprising a
/// failure would be.
pub const GOF_ALPHA: f64 = 1e-4;

/// Normal quantile used for moment/tail slack (two-sided 1e-4 ≈ 3.89).
const Z: f64 = 3.89;

/// Draws `n` seeded samples from `noise` and tests them against the
/// closed-form distribution: KS distance, first two moments, and the
/// empirical exceedance rate of [`Noise::tail_bound`].
///
/// Panics on [`Noise::None`] (there is no distribution to audit).
pub fn audit_noise_distribution(noise: Noise, n: usize, seed: u64) -> GofCheck {
    assert!(n >= 1000, "audit needs a non-trivial sample size");
    let (mechanism, cdf, sigma): (String, Box<dyn Fn(f64) -> f64>, f64) = match noise {
        Noise::Laplace { b } => {
            (format!("laplace(b={b:.4})"), Box::new(move |x| laplace_cdf(b, x)), noise.std_dev())
        }
        Noise::Gaussian { sigma } => (
            format!("gaussian(sigma={sigma:.4})"),
            Box::new(move |x| gaussian_cdf(sigma, x)),
            sigma,
        ),
        Noise::None => panic!("Noise::None has no distribution to audit"),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples: Vec<f64> = (0..n).map(|_| noise.sample(&mut rng)).collect();

    let tail_beta = 0.05;
    let t = noise.tail_bound(tail_beta);
    let exceed = samples.iter().filter(|x| x.abs() > t).count();
    let tail_rate = exceed as f64 / n as f64;
    // The bound promises Pr[|Y| > t] ≤ β (tight for Laplace); allow only
    // upward sampling fluctuation.
    let tail_allowed = tail_beta + Z * (tail_beta * (1.0 - tail_beta) / n as f64).sqrt();

    let (mean, var) = mean_var(&samples);
    let mean_tol = Z * sigma / (n as f64).sqrt();
    let var_ratio = var / (sigma * sigma);
    // Variance of the sample variance is (for these light-tailed laws)
    // ≈ (κ−1)σ⁴/n with kurtosis κ = 6 (Laplace) / 3 (Gaussian); bound both
    // with the Laplace constant.
    let var_tol = Z * (5.0f64 / n as f64).sqrt();

    let ks = ks_statistic(&mut samples, &*cdf);
    let ks_crit = ks_critical(n, GOF_ALPHA);

    let pass = ks <= ks_crit
        && mean.abs() <= mean_tol
        && (var_ratio - 1.0).abs() <= var_tol
        && tail_rate <= tail_allowed;
    GofCheck {
        mechanism,
        n,
        ks,
        ks_crit,
        mean,
        mean_tol,
        var_ratio,
        var_tol,
        tail_rate,
        tail_beta,
        tail_allowed,
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn correctly_scaled_samplers_pass() {
        for (noise, seed) in [
            (Noise::Laplace { b: 3.0 }, 11u64),
            (Noise::Laplace { b: 0.25 }, 12),
            (Noise::Gaussian { sigma: 2.0 }, 13),
            (Noise::Gaussian { sigma: 40.0 }, 14),
        ] {
            let check = audit_noise_distribution(noise, 40_000, seed);
            assert!(
                check.pass,
                "{}: ks {:.4}/{:.4} mean {:.4} var_ratio {:.4} tail {:.4}",
                check.mechanism,
                check.ks,
                check.ks_crit,
                check.mean,
                check.var_ratio,
                check.tail_rate
            );
        }
    }

    #[test]
    fn misscaled_sampler_is_caught() {
        // A sampler drawing at scale 1.15b but *claiming* b: KS against the
        // claimed CDF must reject. Simulate by testing Laplace(1.15) samples
        // against the Laplace(1.0) model.
        let mut rng = StdRng::seed_from_u64(21);
        let wrong = Noise::Laplace { b: 1.15 };
        let mut samples: Vec<f64> = (0..40_000).map(|_| wrong.sample(&mut rng)).collect();
        let d = ks_statistic(&mut samples, |x| laplace_cdf(1.0, x));
        assert!(d > ks_critical(40_000, GOF_ALPHA), "15% scale error must exceed KS critical");
    }

    #[test]
    fn biased_sampler_is_caught() {
        // A mean shift of 0.1σ at n = 40k is ≈ 20 standard errors.
        let mut rng = StdRng::seed_from_u64(22);
        let noise = Noise::Gaussian { sigma: 1.0 };
        let samples: Vec<f64> = (0..40_000).map(|_| noise.sample(&mut rng) + 0.1).collect();
        let (mean, _) = mean_var(&samples);
        assert!(mean.abs() > Z * 1.0 / (40_000f64).sqrt());
    }

    #[test]
    fn uniform_masquerading_as_gaussian_is_caught() {
        // Matching variance but wrong shape: KS sees it, moments alone
        // would not — this is why the audit is distributional.
        let mut rng = StdRng::seed_from_u64(23);
        let half_width = (3.0f64).sqrt(); // Var(U[-w,w]) = w²/3 = 1
        let mut samples: Vec<f64> =
            (0..40_000).map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * half_width).collect();
        let (_, var) = mean_var(&samples);
        assert!((var - 1.0).abs() < 0.05, "variance is calibrated by construction");
        let d = ks_statistic(&mut samples, |x| gaussian_cdf(1.0, x));
        assert!(d > ks_critical(40_000, GOF_ALPHA), "shape mismatch must be flagged (D = {d})");
    }

    #[test]
    #[should_panic]
    fn zero_noise_has_no_distribution() {
        let _ = audit_noise_distribution(Noise::None, 1000, 1);
    }
}
