//! Layer 3: the scenario matrix runner.
//!
//! Sweeps {workload × ε × mechanism × pruning} through the utility audits,
//! plus the distribution and adversarial-pair privacy audits per
//! (mechanism, ε), and flattens everything into a [`ConformanceReport`].
//! Two tiers share the code: `fast` (seed-deterministic, < 30 s, runs in
//! tier-1 CI and `tests/audit_matrix.rs`) and `full` (larger corpora and
//! trial counts, gated behind `DPSC_AUDIT_FULL=1` in a non-blocking CI
//! step).

use dpsc_dpcore::budget::PrivacyParams;
use dpsc_dpcore::noise::Noise;
use dpsc_lowerbounds::theorem6_instance;
use dpsc_private_count::structure::CountMode;
use dpsc_private_count::{build_approx, build_pure, frequent_substrings, BuildParams};
use dpsc_strkit::alphabet::Database;
use dpsc_textindex::CorpusIndex;
use dpsc_workloads::{dna_corpus, markov_corpus, random_corpus, transit_corpus};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dist::audit_noise_distribution;
use crate::privacy::{distinguish, ReleaseOutcome};
use crate::report::{CheckResult, ConformanceReport, ScenarioResult};
use crate::utility::{audit_motif_recall, audit_pipeline_utility};

/// Audit tier: how much statistical power to buy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Small corpora, few trials; runs inside the tier-1 test wall-clock.
    Fast,
    /// Larger corpora and trial counts for tighter estimates; CI runs it in
    /// a separate non-blocking step (`DPSC_AUDIT_FULL=1`).
    Full,
}

impl Tier {
    /// Tier name as it appears in the report.
    pub fn name(&self) -> &'static str {
        match self {
            Tier::Fast => "fast",
            Tier::Full => "full",
        }
    }
}

/// Configuration of one matrix run.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Statistical power tier.
    pub tier: Tier,
    /// Base seed; every audit derives its streams from it, so two runs with
    /// the same config produce byte-identical reports.
    pub seed: u64,
    /// The ε values swept (≥ 2 per the conformance contract).
    pub epsilons: Vec<f64>,
}

impl AuditConfig {
    /// The fast tier with the default sweep.
    pub fn fast() -> Self {
        Self { tier: Tier::Fast, seed: 0xD5C_A0D1, epsilons: vec![1.0, 4.0] }
    }

    /// The full tier with a wider ε sweep.
    pub fn full() -> Self {
        Self { tier: Tier::Full, seed: 0xD5C_A0D1, epsilons: vec![0.5, 1.0, 2.0, 4.0] }
    }

    /// Reads `DPSC_AUDIT_FULL` from the environment: `1` selects the full
    /// tier, anything else the fast tier.
    pub fn from_env() -> Self {
        match std::env::var("DPSC_AUDIT_FULL") {
            Ok(v) if v == "1" => Self::full(),
            _ => Self::fast(),
        }
    }
}

/// The four audited workload generators.
pub const WORKLOADS: [&str; 4] = ["random", "markov", "dna", "transit"];

/// Per-tier knobs.
struct Knobs {
    n: usize,
    ell: usize,
    utility_trials: usize,
    privacy_trials: usize,
    gof_samples: usize,
    recall_n: usize,
    recall_ell: usize,
}

fn knobs(tier: Tier) -> Knobs {
    match tier {
        Tier::Fast => Knobs {
            n: 48,
            ell: 24,
            utility_trials: 8,
            privacy_trials: 400,
            gof_samples: 50_000,
            recall_n: 1200,
            recall_ell: 32,
        },
        Tier::Full => Knobs {
            n: 160,
            ell: 48,
            utility_trials: 24,
            privacy_trials: 1200,
            gof_samples: 200_000,
            recall_n: 4000,
            recall_ell: 48,
        },
    }
}

/// Turns (base seed, scenario counter) into an independent-looking stream
/// seed, deterministically — the workspace-wide SplitMix64 derivation.
fn derive_seed(base: u64, counter: u64) -> u64 {
    dpsc_dpcore::stream::derive_stream(base, counter)
}

/// Builds the corpus for one workload at the tier's size, plus the clip
/// level its application uses (substring counts for text-like workloads,
/// document counts for the genome/transit applications).
fn corpus_for(name: &str, k: &Knobs, seed: u64) -> (Database, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    match name {
        "random" => (random_corpus(k.n, k.ell, 4, &mut rng), k.ell),
        "markov" => (markov_corpus(k.n, k.ell, 4, 0.7, &mut rng), k.ell),
        "dna" => (dna_corpus(k.n, k.ell, 8, &[0.8, 0.4], &mut rng).db, 1),
        "transit" => (transit_corpus(k.n, k.ell, 12, 2, 5, 0.5, &mut rng).db, 1),
        other => panic!("unknown workload {other:?}"),
    }
}

/// Privacy params for one (mechanism, ε) point. Gaussian runs at δ = 1e-6.
fn privacy_for(gaussian: bool, epsilon: f64) -> PrivacyParams {
    if gaussian {
        PrivacyParams::approx(epsilon, 1e-6)
    } else {
        PrivacyParams::pure(epsilon)
    }
}

fn mech_name(gaussian: bool) -> &'static str {
    if gaussian {
        "gaussian"
    } else {
        "laplace"
    }
}

/// Runs the whole matrix and returns the conformance report. Deterministic
/// for a given config (all randomness flows from `cfg.seed`).
pub fn run_matrix(cfg: &AuditConfig) -> ConformanceReport {
    let k = knobs(cfg.tier);
    let mut scenarios = Vec::new();
    let mut counter = 0u64;
    let next_seed = |counter: &mut u64| {
        *counter += 1;
        derive_seed(cfg.seed, *counter)
    };

    // ── Layer 1a: sampler goodness-of-fit per (mechanism, ε). ──────────
    // The scales are the ones the pipelines request: Δ/ε for Laplace and
    // the (ε, δ) Gaussian calibration at unit sensitivity (KS is
    // scale-covariant, so unit sensitivity covers all of them).
    for &eps in &cfg.epsilons {
        for gaussian in [false, true] {
            let noise = if gaussian {
                Noise::gaussian_for(eps, 1e-6, 1.0)
            } else {
                Noise::laplace_for(eps, 1.0)
            };
            let g = audit_noise_distribution(noise, k.gof_samples, next_seed(&mut counter));
            scenarios.push(ScenarioResult {
                workload: "noise".to_string(),
                mechanism: mech_name(gaussian).to_string(),
                epsilon: eps,
                pruning: "-".to_string(),
                checks: vec![
                    CheckResult::new(
                        "ks_distance",
                        g.ks,
                        g.ks_crit,
                        g.ks <= g.ks_crit,
                        format!("{} vs closed-form CDF, n={}", g.mechanism, g.n),
                    ),
                    CheckResult::new(
                        "mean_abs",
                        g.mean.abs(),
                        g.mean_tol,
                        g.mean.abs() <= g.mean_tol,
                        "centered distribution".to_string(),
                    ),
                    CheckResult::new(
                        "var_ratio_dev",
                        (g.var_ratio - 1.0).abs(),
                        g.var_tol,
                        (g.var_ratio - 1.0).abs() <= g.var_tol,
                        format!("observed/expected variance = {:.4}", g.var_ratio),
                    ),
                    CheckResult::new(
                        "tail_rate",
                        g.tail_rate,
                        g.tail_allowed,
                        g.tail_rate <= g.tail_allowed,
                        format!("Pr[|Y| > tail_bound(β)] at β = {}", g.tail_beta),
                    ),
                ],
            });
        }
    }

    // ── Layer 1b: end-to-end distinguishers per (mechanism, ε). ────────
    // Pair 1: the Theorem 6 worst case (a^ℓ vs b^ℓ). Pair 2: a Markov
    // corpus with one document replaced by the all-'a' outlier. Both
    // release the full construction's answer for the pattern "a"; the FAIL
    // branch is part of the output space.
    let inst = theorem6_instance(8, 12);
    let markov_db = {
        let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, 0xA11CE));
        markov_corpus(8, 12, 4, 0.7, &mut rng)
    };
    let markov_nb =
        markov_db.neighbor_replacing(0, vec![b'a'; 12]).expect("valid neighbor document");
    let pairs: [(&str, &Database, &Database, &[u8]); 2] = [
        ("adversarial-t6", &inst.db, &inst.neighbor, &inst.pattern),
        ("adversarial-markov", &markov_db, &markov_nb, b"a"),
    ];
    for (label, db, nb, pattern) in pairs {
        let idx_db = CorpusIndex::build(db);
        let idx_nb = CorpusIndex::build(nb);
        for &eps in &cfg.epsilons {
            for gaussian in [false, true] {
                let privacy = privacy_for(gaussian, eps);
                let mode = if gaussian { CountMode::Document } else { CountMode::Substring };
                let params =
                    BuildParams::new(mode, privacy, 0.2).with_thresholds(4.0, f64::NEG_INFINITY);
                let mut rng_db = StdRng::seed_from_u64(next_seed(&mut counter));
                let mut rng_nb = StdRng::seed_from_u64(next_seed(&mut counter));
                let release = |idx: &CorpusIndex, rng: &mut StdRng| {
                    let built = if gaussian {
                        build_approx(idx, &params, rng)
                    } else {
                        build_pure(idx, &params, rng)
                    };
                    match built {
                        Ok(s) => ReleaseOutcome::ok(s.query(pattern)),
                        Err(_) => ReleaseOutcome::fail(),
                    }
                };
                let check = distinguish(
                    label,
                    eps,
                    k.privacy_trials,
                    || release(&idx_db, &mut rng_db),
                    || release(&idx_nb, &mut rng_nb),
                );
                scenarios.push(ScenarioResult {
                    workload: label.to_string(),
                    mechanism: mech_name(gaussian).to_string(),
                    epsilon: eps,
                    pruning: "-".to_string(),
                    checks: vec![CheckResult::new(
                        "privacy_loss_lcb",
                        check.epsilon_lcb,
                        check.epsilon_claimed,
                        check.pass,
                        format!(
                            "ε̂ = {:.3} over {} events, {} trials/side, worst event {}",
                            check.epsilon_hat, check.events, check.trials, check.worst_event
                        ),
                    )],
                });
            }
        }
    }

    // ── Layer 2: utility conformance, the full 4-axis matrix. ──────────
    for (wi, wl) in WORKLOADS.into_iter().enumerate() {
        let (db, delta_clip) = corpus_for(wl, &k, derive_seed(cfg.seed, 0xC0_0501 + wi as u64));
        let idx = CorpusIndex::build(&db);
        let probes = frequent_substrings(&idx, delta_clip, 2.0, None);
        for &eps in &cfg.epsilons {
            for gaussian in [false, true] {
                for prune in [false, true] {
                    let u = audit_pipeline_utility(
                        &idx,
                        &probes,
                        delta_clip,
                        privacy_for(gaussian, eps),
                        gaussian,
                        0.1,
                        prune,
                        k.utility_trials,
                        next_seed(&mut counter),
                    );
                    let mut checks = vec![
                        CheckResult::new(
                            "utility_max_error_violations",
                            u.violations as f64,
                            u.allowed_violations as f64,
                            u.violations <= u.allowed_violations,
                            format!(
                                "max|noisy−exact| ≤ α={:.1} per trial (worst {:.1}, mean {:.1}, {} probes, {} trials)",
                                u.alpha_bound, u.observed_max, u.mean_max, u.probes, u.trials
                            ),
                        ),
                        CheckResult::new(
                            "utility_avg_error",
                            u.mean_avg,
                            u.alpha_bound,
                            u.mean_avg <= u.alpha_bound,
                            "mean absolute error within the sup bound".to_string(),
                        ),
                    ];
                    if prune {
                        checks.push(CheckResult::new(
                            "pruned_true_count",
                            u.worst_pruned_true,
                            u.pruned_bound,
                            u.worst_pruned_true <= u.pruned_bound,
                            "absent-string guarantee: pruned strings have small true counts"
                                .to_string(),
                        ));
                    }
                    scenarios.push(ScenarioResult {
                        workload: wl.to_string(),
                        mechanism: mech_name(gaussian).to_string(),
                        epsilon: eps,
                        pruning: if prune { "analytic" } else { "off" }.to_string(),
                        checks,
                    });
                }
            }
        }
    }

    // ── Layer 2b: planted-motif recall on DNA ground truth. ────────────
    // Runs at utility-regime ε (the noise floor is Θ(ℓ·polylog/ε)
    // regardless of n, so honest small-ε releases on test-sized corpora
    // carry no signal — the privacy of those regimes is covered by layer
    // 1b). Motifs are planted *exactly* by the generator, so qualifying
    // counts are ground truth, not estimates.
    {
        let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, 0xD_4A));
        let corpus = dna_corpus(k.recall_n, k.recall_ell, 12, &[0.9, 0.35], &mut rng);
        let tau = 0.45 * k.recall_n as f64;
        let margin = 0.2 * k.recall_n as f64;
        // Laplace needs a much larger ε than Gaussian for the same
        // document-count recall — that is Theorem 2's √(ℓΔ) separation
        // showing up empirically (at Δ = 1 the Gaussian prefix sums are
        // ~√ℓ· tighter), so the two points are deliberately asymmetric.
        for (gaussian, eps) in [(false, 200.0), (true, 8.0)] {
            let r = audit_motif_recall(
                &corpus,
                privacy_for(gaussian, eps),
                gaussian,
                tau,
                margin,
                next_seed(&mut counter),
            );
            scenarios.push(ScenarioResult {
                workload: "dna".to_string(),
                mechanism: mech_name(gaussian).to_string(),
                epsilon: eps,
                pruning: "mining".to_string(),
                checks: vec![
                    CheckResult::new(
                        "motif_recall",
                        r.recovered as f64,
                        r.qualifying as f64,
                        r.pass,
                        format!(
                            "planted motifs ≥ τ+margin recovered ({}/{} of {} planted, τ={}, utility-regime ε)",
                            r.recovered, r.qualifying, r.planted, r.tau
                        ),
                    ),
                    CheckResult::new(
                        "motif_recall_nonvacuous",
                        r.qualifying as f64,
                        1.0,
                        r.qualifying >= 1 && !r.construction_failed,
                        "at least one motif must clear the recall threshold".to_string(),
                    ),
                ],
            });
        }
    }

    // ── Layer 4: observability-surface privacy cleanliness. ────────────
    scenarios.push(audit_observability_surfaces());

    ConformanceReport { tier: cfg.tier.name().to_string(), seed: cfg.seed, scenarios }
}

/// Counts the occurrences of `needle` anywhere in `hay`.
fn count_occurrences(hay: &[u8], needle: &[u8]) -> usize {
    if needle.is_empty() || hay.len() < needle.len() {
        return 0;
    }
    hay.windows(needle.len()).filter(|w| *w == needle).count()
}

/// The observability layer's privacy contract, audited end to end: a live
/// daemon with tracing and the slow-op log enabled serves distinctive
/// canary patterns, and none of its observability surfaces — the wire-
/// encoded trace events, the slow-op entries inside them, or the text
/// exposition — may contain a single raw pattern byte. The surfaces carry
/// FNV fingerprints and lengths only, and the audit also proves each
/// canary is *findable* by fingerprint, so the leak checks are not
/// vacuously green on an empty trace.
fn audit_observability_surfaces() -> ScenarioResult {
    use std::sync::Arc;
    use std::time::Duration;

    use dpsc_private_count::codec::fnv1a;
    use dpsc_serve::wire::encode_response;
    use dpsc_serve::{Client, Response, Server, ServerConfig, ShardManager, TraceKind};

    // A deterministic small release to serve; the corpus content is
    // irrelevant — the canaries below are what must not leak.
    let mut rng = StdRng::seed_from_u64(0x0B5E_7EA1);
    let db = markov_corpus(24, 12, 4, 0.6, &mut rng);
    let idx = CorpusIndex::build(&db);
    let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(1e4), 0.1)
        .with_thresholds(1.5, 1.5);
    let frozen = build_pure(&idx, &params, &mut rng).expect("audit release builds").freeze();
    let epsilon = frozen.privacy().epsilon;

    const CANARIES: [&[u8]; 3] = [b"CANARY-ALPHA-0001", b"CANARY-BRAVO-0002", b"CANARY-CHARLIE-3"];

    let manager = Arc::new(ShardManager::new());
    manager.install(0, frozen, 0);
    let config = ServerConfig {
        workers: 2,
        slow_op_threshold: Some(Duration::from_nanos(1)),
        ..ServerConfig::default()
    };
    let handle = Server::spawn(config, manager).expect("audit daemon binds");
    let mut client = Client::connect(handle.addr()).expect("audit client connects");
    for canary in CANARIES {
        client.query(0, canary).expect("canary query answered");
    }
    let events = client.trace(1024).expect("trace drains");
    let text = client.metrics_text().expect("exposition answered");
    handle.shutdown();

    // Surface 1: the trace ring, exactly as it crosses the wire.
    let trace_bytes = encode_response(&Response::Trace { events: events.clone() });
    let trace_leaks: usize = CANARIES.iter().map(|c| count_occurrences(&trace_bytes, c)).sum();
    let frame_fps: Vec<u64> = events
        .iter()
        .filter(|e| e.kind == TraceKind::FrameAnswered)
        .map(|e| e.fingerprint)
        .collect();
    let frames_found = CANARIES.iter().filter(|c| frame_fps.contains(&fnv1a(c))).count();

    // Surface 2: the slow-op log (every op is slow at a 1 ns threshold).
    let slow_fps: Vec<u64> =
        events.iter().filter(|e| e.kind == TraceKind::SlowOp).map(|e| e.fingerprint).collect();
    let slow_found = CANARIES.iter().filter(|c| slow_fps.contains(&fnv1a(c))).count();

    // Surface 3: the Prometheus-style text exposition.
    let expo_leaks: usize = CANARIES.iter().map(|c| count_occurrences(text.as_bytes(), c)).sum();

    let n = CANARIES.len();
    ScenarioResult {
        workload: "serve-trace".to_string(),
        mechanism: "laplace".to_string(),
        epsilon,
        pruning: "-".to_string(),
        checks: vec![
            CheckResult::new(
                "trace_marker_fingerprints",
                frames_found as f64,
                n as f64,
                frames_found == n,
                "every canary query is findable in the trace by FNV fingerprint".to_string(),
            ),
            CheckResult::new(
                "trace_pattern_leak_bytes",
                trace_leaks as f64,
                0.0,
                trace_leaks == 0,
                format!(
                    "canary byte occurrences in {} wire-encoded trace bytes",
                    trace_bytes.len()
                ),
            ),
            CheckResult::new(
                "slow_op_marker_fingerprints",
                slow_found as f64,
                n as f64,
                slow_found == n,
                "slow-op entries identify patterns by fingerprint, never content".to_string(),
            ),
            CheckResult::new(
                "exposition_pattern_leak_bytes",
                expo_leaks as f64,
                0.0,
                expo_leaks == 0 && text.contains("dpsc_slow_ops_total"),
                "canary byte occurrences in the text exposition (and the exposition is live)"
                    .to_string(),
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_derivation_is_spread_out() {
        let a = derive_seed(1, 1);
        let b = derive_seed(1, 2);
        let c = derive_seed(2, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn corpus_for_covers_all_workloads() {
        let k = knobs(Tier::Fast);
        for wl in WORKLOADS {
            let (db, delta) = corpus_for(wl, &k, 9);
            assert!(db.n() > 0, "{wl}");
            assert!(delta >= 1);
        }
    }

    #[test]
    fn config_from_env_defaults_to_fast() {
        // The test runner does not set DPSC_AUDIT_FULL; default is fast.
        if std::env::var("DPSC_AUDIT_FULL").is_err() {
            assert_eq!(AuditConfig::from_env().tier, Tier::Fast);
        }
    }
}
