//! Layer 1b: neighboring-database privacy distinguishers.
//!
//! A lightweight DP-Sniper-style check: run the *end-to-end* release twice
//! per trial — once on `D`, once on a neighboring `D'` — and estimate the
//! empirical privacy loss `sup_E |ln(Pr_D[E]/Pr_{D'}[E])|` over a family of
//! threshold events on the released count, with the construction's FAIL
//! branch as a first-class event (aborting *is* an output).
//!
//! No test can prove ε-DP; what this audit certifies is the absence of the
//! classic catastrophic bugs (under-scaled sensitivity, budget
//! double-spending, noise applied to the wrong quantity), which all show up
//! as a *confident* empirical loss above the declared ε. The verdict uses a
//! Wilson confidence lower bound on the loss, so sampling noise alone
//! cannot fail a correct mechanism: `pass ⇔ ε̂_lcb ≤ ε`.

use crate::stats::wilson_interval;

/// One randomized execution of the mechanism under audit.
#[derive(Debug, Clone, Copy)]
pub struct ReleaseOutcome {
    /// The construction took its FAIL branch (e.g. candidate overflow).
    pub failed: bool,
    /// The released scalar (ignored when `failed`).
    pub value: f64,
}

impl ReleaseOutcome {
    /// A successful release of `value`.
    pub fn ok(value: f64) -> Self {
        Self { failed: false, value }
    }

    /// The FAIL branch.
    pub fn fail() -> Self {
        Self { failed: true, value: f64::NAN }
    }
}

/// Result of a distinguishing audit on one neighboring pair.
#[derive(Debug, Clone)]
pub struct PrivacyCheck {
    /// Scenario label (workload / instance the pair came from).
    pub label: String,
    /// The ε the construction claims.
    pub epsilon_claimed: f64,
    /// Point estimate of the worst empirical loss over the event family
    /// (add-one smoothed, so finite; biased toward 0 at rare events).
    pub epsilon_hat: f64,
    /// Wilson lower confidence bound on the loss: the audit is only
    /// confident of a violation when this exceeds `epsilon_claimed`.
    pub epsilon_lcb: f64,
    /// Trials per database.
    pub trials: usize,
    /// Number of events in the tested family.
    pub events: usize,
    /// Description of the loss-maximizing event.
    pub worst_event: String,
    /// `epsilon_lcb ≤ epsilon_claimed`.
    pub pass: bool,
}

/// Normal quantile for the Wilson bounds. 4.0 (≈ 3e-5 one-sided) leaves
/// headroom for the ~40-event union over the threshold family, keeping the
/// per-audit false-positive rate ≈ 1e-3 even with fresh seeds.
const Z: f64 = 4.0;

/// Number of threshold events carved from the pooled release values.
const THRESHOLD_GRID: usize = 15;

/// Runs `trials` executions of the mechanism on each database and returns
/// the distinguishing verdict. `run_db`/`run_nb` must each perform one
/// fresh randomized end-to-end execution.
pub fn distinguish(
    label: &str,
    epsilon_claimed: f64,
    trials: usize,
    mut run_db: impl FnMut() -> ReleaseOutcome,
    mut run_nb: impl FnMut() -> ReleaseOutcome,
) -> PrivacyCheck {
    assert!(trials >= 20, "too few trials to say anything");
    let db: Vec<ReleaseOutcome> = (0..trials).map(|_| run_db()).collect();
    let nb: Vec<ReleaseOutcome> = (0..trials).map(|_| run_nb()).collect();

    // Event family: FAIL, plus {ok ∧ value ≥ t} for a quantile grid of t
    // over the pooled successful values — and every complement, so one-sided
    // probability collapses are caught from both ends.
    let mut pooled: Vec<f64> =
        db.iter().chain(&nb).filter(|o| !o.failed).map(|o| o.value).collect();
    pooled.sort_by(f64::total_cmp);
    let mut thresholds: Vec<f64> = (1..=THRESHOLD_GRID)
        .filter_map(|i| pooled.get(i * pooled.len() / (THRESHOLD_GRID + 1)).copied())
        .collect();
    thresholds.dedup();

    let mut epsilon_hat = 0.0f64;
    let mut epsilon_lcb = 0.0f64;
    let mut worst_event = String::from("none");
    let mut events = 0usize;
    let mut consider = |desc: String, hits_db: usize, hits_nb: usize| {
        events += 1;
        for (name, a, b) in [("D/D'", hits_db, hits_nb), ("D'/D", hits_nb, hits_db)] {
            // Add-one smoothing for the point estimate (finite at 0 hits).
            let sm_a = (a + 1) as f64 / (trials + 2) as f64;
            let sm_b = (b + 1) as f64 / (trials + 2) as f64;
            let hat = (sm_a / sm_b).ln();
            // Confident loss: numerator pushed down, denominator pushed up.
            let (a_lo, _) = wilson_interval(a, trials, Z);
            let (_, b_hi) = wilson_interval(b, trials, Z);
            let lcb = if a_lo > 0.0 { (a_lo / b_hi).ln() } else { 0.0 };
            if hat > epsilon_hat {
                epsilon_hat = hat;
            }
            if lcb > epsilon_lcb {
                epsilon_lcb = lcb;
                worst_event = format!("{desc} [{name}]");
            }
        }
    };

    let fails = |side: &[ReleaseOutcome]| side.iter().filter(|o| o.failed).count();
    consider("FAIL".to_string(), fails(&db), fails(&nb));
    consider("¬FAIL".to_string(), trials - fails(&db), trials - fails(&nb));
    for &t in &thresholds {
        let hits =
            |side: &[ReleaseOutcome]| side.iter().filter(|o| !o.failed && o.value >= t).count();
        let (h_db, h_nb) = (hits(&db), hits(&nb));
        consider(format!("count ≥ {t:.3}"), h_db, h_nb);
        consider(format!("FAIL ∨ count < {t:.3}"), trials - h_db, trials - h_nb);
    }

    PrivacyCheck {
        label: label.to_string(),
        epsilon_claimed,
        epsilon_hat,
        epsilon_lcb,
        trials,
        events,
        worst_event,
        pass: epsilon_lcb <= epsilon_claimed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsc_dpcore::noise::Noise;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identical_distributions_pass() {
        let noise = Noise::Laplace { b: 2.0 };
        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(2);
        let check = distinguish(
            "identical",
            0.5,
            4000,
            || ReleaseOutcome::ok(10.0 + noise.sample(&mut rng_a)),
            || ReleaseOutcome::ok(10.0 + noise.sample(&mut rng_b)),
        );
        assert!(check.pass, "ε̂_lcb = {} on identical distributions", check.epsilon_lcb);
        assert!(check.epsilon_lcb < 0.2);
    }

    #[test]
    fn correctly_calibrated_laplace_passes() {
        // Counts differ by the sensitivity; noise at b = Δ/ε ⇒ true loss ε.
        let eps = 0.8;
        let sens = 4.0;
        let noise = Noise::laplace_for(eps, sens);
        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(4);
        let check = distinguish(
            "calibrated",
            eps,
            4000,
            || ReleaseOutcome::ok(20.0 + noise.sample(&mut rng_a)),
            || ReleaseOutcome::ok(20.0 - sens + noise.sample(&mut rng_b)),
        );
        assert!(check.pass, "ε̂_lcb = {} vs ε = {eps}", check.epsilon_lcb);
    }

    #[test]
    fn exact_release_is_confidently_violated() {
        let check =
            distinguish("exact", 1.0, 400, || ReleaseOutcome::ok(32.0), || ReleaseOutcome::ok(0.0));
        assert!(!check.pass, "exact release must fail the audit");
        assert!(check.epsilon_lcb > 2.0, "ε̂_lcb = {}", check.epsilon_lcb);
    }

    #[test]
    fn under_noised_release_is_confidently_violated() {
        // Declared ε = 0.3 but noise calibrated 10× too small: true loss 3.
        let eps = 0.3;
        let sens = 10.0;
        let noise = Noise::laplace_for(eps, sens / 10.0);
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(6);
        let check = distinguish(
            "under-noised",
            eps,
            20_000,
            || ReleaseOutcome::ok(sens + noise.sample(&mut rng_a)),
            || ReleaseOutcome::ok(noise.sample(&mut rng_b)),
        );
        assert!(!check.pass, "10× under-noised mechanism must be caught");
        assert!(check.epsilon_lcb > 2.0 * eps, "ε̂_lcb = {}", check.epsilon_lcb);
    }

    #[test]
    fn fail_branch_leak_is_caught() {
        // A mechanism whose FAIL probability depends sharply on the data
        // leaks through the abort channel even if released values match.
        let mut i = 0u64;
        let mut j = 0u64;
        let check = distinguish(
            "fail-leak",
            0.5,
            1000,
            move || {
                i += 1;
                if i.is_multiple_of(50) {
                    ReleaseOutcome::fail()
                } else {
                    ReleaseOutcome::ok(1.0)
                }
            },
            move || {
                j += 1;
                if j.is_multiple_of(2) {
                    ReleaseOutcome::fail()
                } else {
                    ReleaseOutcome::ok(1.0)
                }
            },
        );
        assert!(!check.pass, "data-dependent FAIL rate must be caught");
        assert!(check.worst_event.contains("FAIL"), "worst event: {}", check.worst_event);
    }
}
