//! # dpsc-audit — statistical DP/utility conformance harness
//!
//! The paper's value is its *guarantees*: (ε, δ)-indistinguishability of
//! the release, and high-probability utility bounds on the noisy counts.
//! This crate turns those theorems into executable regression checks, in
//! three layers:
//!
//! 1. **Distribution audits** ([`dist`]) — seeded Kolmogorov–Smirnov and
//!    moment/tail tests of the [`dpsc_dpcore::noise`] samplers against
//!    their closed-form CDFs, so a calibration regression (a lost √2, a
//!    mis-scaled `b`) is caught at the source.
//! 2. **Privacy distinguishers** ([`privacy`]) — a lightweight
//!    DP-Sniper-style neighboring-database attack on the *end-to-end*
//!    release (FAIL branch included), with Wilson-bound verdicts so
//!    sampling noise cannot fail a correct mechanism.
//! 3. **Utility conformance** ([`utility`]) and the **scenario matrix**
//!    ([`matrix`]) — run Steps 3–6 on all four `dpsc-workloads` generators
//!    across {workload × ε × mechanism × pruning}, assert observed
//!    max/avg error against the `Noise::tail_bound`-derived theorem
//!    bounds (plus planted-motif recall ground truth), and emit a JSON
//!    conformance report ([`report`], `results/audit_conformance.json`).
//!
//! Every audit draws from seeded RNG streams derived from one base seed,
//! so a matrix run is byte-for-byte reproducible; the statistical
//! significance levels describe how surprising a failure would be under
//! fresh seeds (per-check false-positive rate ≤ ~1e-3; see DESIGN.md §9).
//!
//! No statistical test can *prove* differential privacy. What this harness
//! certifies is conformance: the implemented mechanisms behave like their
//! analysis says, on every scenario the matrix covers — which is what
//! makes aggressive performance refactors of the pipelines safe.

pub mod dist;
pub mod matrix;
pub mod privacy;
pub mod report;
pub mod stats;
pub mod utility;

pub use dist::{audit_noise_distribution, GofCheck};
pub use matrix::{run_matrix, AuditConfig, Tier, WORKLOADS};
pub use privacy::{distinguish, PrivacyCheck, ReleaseOutcome};
pub use report::{CheckResult, ConformanceReport, ScenarioResult};
pub use utility::{audit_motif_recall, audit_pipeline_utility, RecallCheck, UtilityCheck};
