//! Sparse-table range-minimum queries.
//!
//! `O(N log N)` preprocessing, `O(1)` query. This is the substitute for the
//! constant-time LCE machinery of Bender–Farach-Colton / Harel–Tarjan
//! \[6, 45\] cited by the paper: the answers are identical, only the
//! preprocessing exponent differs (see DESIGN.md §2).

/// Sparse table over `u32` values answering *position* of the minimum in a
/// half-open range.
#[derive(Debug, Clone)]
pub struct SparseTableRmq {
    /// `table[k][i]` = index of the minimum in `values[i .. i + 2^k]`.
    table: Vec<Vec<u32>>,
    values: Vec<u32>,
}

impl SparseTableRmq {
    /// Builds the table over `values`.
    pub fn new(values: &[u32]) -> Self {
        let n = values.len();
        let levels = if n <= 1 { 1 } else { (usize::BITS - (n - 1).leading_zeros()) as usize + 1 };
        let mut table: Vec<Vec<u32>> = Vec::with_capacity(levels);
        table.push((0..n as u32).collect());
        let mut k = 1usize;
        while (1usize << k) <= n {
            let half = 1usize << (k - 1);
            let prev = &table[k - 1];
            let mut row = Vec::with_capacity(n - (1 << k) + 1);
            for i in 0..=(n - (1 << k)) {
                let a = prev[i];
                let b = prev[i + half];
                row.push(if values[a as usize] <= values[b as usize] { a } else { b });
            }
            table.push(row);
            k += 1;
        }
        Self { table, values: values.to_vec() }
    }

    /// Index of the minimum value in `values[lo..hi)`. Ties resolve to the
    /// leftmost position.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or `hi > len`.
    #[inline]
    pub fn argmin(&self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi && hi <= self.values.len(), "empty or out-of-range RMQ");
        let k = (usize::BITS - 1 - (hi - lo).leading_zeros()) as usize;
        let a = self.table[k][lo];
        let b = self.table[k][hi - (1 << k)];
        // Prefer the leftmost index on ties for determinism.
        let (va, vb) = (self.values[a as usize], self.values[b as usize]);
        if va < vb || (va == vb && a <= b) {
            a as usize
        } else {
            b as usize
        }
    }

    /// Minimum value in `values[lo..hi)`.
    #[inline]
    pub fn min(&self, lo: usize, hi: usize) -> u32 {
        self.values[self.argmin(lo, hi)]
    }

    /// The underlying values.
    #[inline]
    pub fn values(&self) -> &[u32] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_scan() {
        let vals: Vec<u32> = vec![5, 3, 8, 3, 1, 9, 2, 2, 7, 0, 4];
        let rmq = SparseTableRmq::new(&vals);
        for lo in 0..vals.len() {
            for hi in lo + 1..=vals.len() {
                let naive = vals[lo..hi].iter().min().copied().unwrap();
                assert_eq!(rmq.min(lo, hi), naive, "range [{lo},{hi})");
                let arg = rmq.argmin(lo, hi);
                assert!(arg >= lo && arg < hi);
                assert_eq!(vals[arg], naive);
            }
        }
    }

    #[test]
    fn singleton() {
        let rmq = SparseTableRmq::new(&[7]);
        assert_eq!(rmq.min(0, 1), 7);
        assert_eq!(rmq.argmin(0, 1), 0);
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let rmq = SparseTableRmq::new(&[1, 2]);
        let _ = rmq.min(1, 1);
    }
}
