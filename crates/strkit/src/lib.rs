//! # dpsc-strkit — string-algorithm substrate
//!
//! Foundational string data structures used throughout the differentially
//! private substring/document counting system (Bernardini–Bille–Gørtz–Steiner,
//! PODS 2025):
//!
//! * [`SuffixArray`] — SA-IS linear-time suffix array construction over byte
//!   or small-integer texts (the paper's suffix-tree substrate, §2.1).
//! * [`LcpArray`] — Kasai's linear-time longest-common-prefix array.
//! * [`SparseTableRmq`] — `O(1)` range-minimum queries after `O(N log N)`
//!   preprocessing; powers [`Lce`] longest-common-extension queries, the
//!   substitute for the `O(1)`-LCE structures of \[6,30,45\] in the paper.
//! * [`Lce`] — longest common extension between arbitrary text positions.
//! * [`RollingHash`] — double polynomial rolling hash (fast substring
//!   equality / concatenation lookups).
//! * [`Trie`] — counted tries over byte strings (the `T_C` structure of the
//!   paper's Step 2), with pruning and DFS mining traversals.
//! * Pattern search over suffix arrays ([`search`]) with naive reference
//!   implementations for cross-validation.
//!
//! All structures are deterministic and allocation-conscious: indices are
//! `u32` where the text length permits, and construction never holds more
//! than the documented working space.

pub mod alphabet;
pub mod hash;
pub mod lce;
pub mod lcp;
pub mod rmq;
pub mod search;
pub mod suffix_array;
pub mod trie;

pub use alphabet::Alphabet;
pub use hash::RollingHash;
pub use lce::Lce;
pub use lcp::LcpArray;
pub use rmq::SparseTableRmq;
pub use suffix_array::SuffixArray;
pub use trie::Trie;

/// Returns the number of (possibly overlapping) occurrences of `pattern` in
/// `text`, computed naively in `O(|text| · |pattern|)`.
///
/// This is the reference definition of `count(P, S)` from the paper
/// (Section 1.1): the number of positions `i` with
/// `text[i .. i+|P|] == pattern`. The empty pattern occurs `|text|` times by
/// the paper's convention (`count(ε, S) = |S|`).
///
/// Used as ground truth in tests and for small inputs; production paths use
/// [`search::count_occurrences`] over a [`SuffixArray`].
pub fn naive_count(pattern: &[u8], text: &[u8]) -> usize {
    if pattern.is_empty() {
        return text.len();
    }
    if pattern.len() > text.len() {
        return 0;
    }
    text.windows(pattern.len()).filter(|w| *w == pattern).count()
}

/// Returns `true` iff `pattern` occurs in `text` (naive reference).
pub fn naive_contains(pattern: &[u8], text: &[u8]) -> bool {
    pattern.is_empty() || text.windows(pattern.len()).any(|w| w == pattern)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_count_basic() {
        assert_eq!(naive_count(b"ab", b"absab"), 2);
        assert_eq!(naive_count(b"aa", b"aaaa"), 3);
        assert_eq!(naive_count(b"", b"abc"), 3);
        assert_eq!(naive_count(b"abcd", b"abc"), 0);
        assert_eq!(naive_count(b"x", b""), 0);
    }

    #[test]
    fn naive_contains_basic() {
        assert!(naive_contains(b"", b""));
        assert!(naive_contains(b"be", b"babe"));
        assert!(!naive_contains(b"eb", b"babe"));
    }
}
