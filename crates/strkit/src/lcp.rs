//! Longest-common-prefix arrays (Kasai's algorithm).
//!
//! `lcp[i]` is the length of the longest common prefix of the suffixes
//! ranked `i-1` and `i` in the suffix array (`lcp\[0\] = 0`). Together with a
//! range-minimum structure this yields `O(1)` longest common extensions
//! ([`crate::lce`]) and lets us walk the virtual suffix *tree* (branching
//! nodes = LCP intervals), which is how `dpsc-textindex` implements the
//! paper's suffix-tree traversals (Lemma 7, Lemma 21).

use crate::suffix_array::SuffixArray;

/// LCP array companion to a [`SuffixArray`].
#[derive(Debug, Clone)]
pub struct LcpArray {
    lcp: Vec<u32>,
}

impl LcpArray {
    /// Builds the LCP array with Kasai's `O(n)` algorithm.
    ///
    /// Works for any integer text; generic over the symbol type so the same
    /// code serves byte texts and sentinel-augmented integer texts.
    pub fn build<T: PartialEq>(text: &[T], sa: &SuffixArray) -> Self {
        let n = text.len();
        assert_eq!(n, sa.len(), "text/suffix-array length mismatch");
        let mut lcp = vec![0u32; n];
        let rank = sa.rank();
        let sa_arr = sa.sa();
        let mut h = 0usize;
        for i in 0..n {
            let r = rank[i] as usize;
            if r > 0 {
                let j = sa_arr[r - 1] as usize;
                while i + h < n && j + h < n && text[i + h] == text[j + h] {
                    h += 1;
                }
                lcp[r] = h as u32;
                h = h.saturating_sub(1);
            } else {
                h = 0;
            }
        }
        Self { lcp }
    }

    /// The LCP values; `self.values()\[0\] == 0`.
    #[inline]
    pub fn values(&self) -> &[u32] {
        &self.lcp
    }

    /// Length.
    #[inline]
    pub fn len(&self) -> usize {
        self.lcp.len()
    }

    /// Whether the array is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lcp.is_empty()
    }
}

/// Naive LCP of two slices, for testing.
pub fn naive_lcp<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(text: &[u8]) {
        let sa = SuffixArray::from_bytes(text);
        let lcp = LcpArray::build(text, &sa);
        for i in 1..text.len() {
            let a = sa.sa()[i - 1] as usize;
            let b = sa.sa()[i] as usize;
            assert_eq!(
                lcp.values()[i] as usize,
                naive_lcp(&text[a..], &text[b..]),
                "rank {i} of {:?}",
                text
            );
        }
        if !text.is_empty() {
            assert_eq!(lcp.values()[0], 0);
        }
    }

    #[test]
    fn kasai_matches_naive() {
        check(b"");
        check(b"a");
        check(b"banana");
        check(b"mississippi");
        check(b"aaaaaa");
        check(b"abcabcabc");
        check(b"abaababaabaab");
    }
}
