//! Counted tries over byte strings.
//!
//! The paper's data structures are tries `T_C` whose nodes `v` represent
//! strings `str(v)` and carry counts (true counts during construction, noisy
//! counts in the published structure). [`Trie`] is an arena-allocated trie
//! generic over the per-node payload, with the operations the pipeline
//! needs: path insertion, pattern walking (`O(|P|)` queries, Theorems 1–4),
//! subtree pruning (Step 6), and DFS traversal for mining.
//!
//! ## Edge layout
//! Each node stores its out-edges as a label-sorted `Vec<(u8, NodeId)>`, so
//! a child lookup is one binary search over a contiguous pair array — no
//! arena indirection per probe. Keeping the label inline (instead of reading
//! it through the child node) matters in the construction hot loops, where
//! `ensure_child` is called once per candidate symbol and the child nodes
//! are scattered across the arena.

/// Identifier of a trie node (index into the arena). The root is always
/// [`Trie::ROOT`].
pub type NodeId = u32;

#[derive(Debug, Clone)]
struct Node<V> {
    parent: NodeId,
    /// Edge label from the parent (undefined for the root).
    symbol: u8,
    /// Out-edges `(label, child)`, sorted by label (binary-searchable).
    edges: Vec<(u8, NodeId)>,
    depth: u32,
    value: V,
}

/// Arena trie with one payload value of type `V` per node.
#[derive(Debug, Clone)]
pub struct Trie<V> {
    nodes: Vec<Node<V>>,
}

impl<V> Trie<V> {
    /// The root node id.
    pub const ROOT: NodeId = 0;

    /// Creates a trie containing only the root, carrying `root_value`.
    pub fn new(root_value: V) -> Self {
        Self {
            nodes: vec![Node {
                parent: Self::ROOT,
                symbol: 0,
                edges: Vec::new(),
                depth: 0,
                value: root_value,
            }],
        }
    }

    /// Number of nodes (including the root).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the trie has only the root.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The child of `node` along `symbol`, if present. `O(log deg)`.
    #[inline]
    pub fn child(&self, node: NodeId, symbol: u8) -> Option<NodeId> {
        let edges = &self.nodes[node as usize].edges;
        edges.binary_search_by_key(&symbol, |e| e.0).ok().map(|i| edges[i].1)
    }

    /// Ensures a child of `node` along `symbol` exists (creating it with
    /// `default` if needed) and returns its id. `O(log deg)` lookup plus an
    /// ordered insert on miss.
    pub fn ensure_child(&mut self, node: NodeId, symbol: u8, default: V) -> NodeId {
        let pos = {
            let edges = &self.nodes[node as usize].edges;
            match edges.binary_search_by_key(&symbol, |e| e.0) {
                Ok(i) => return edges[i].1,
                Err(i) => i,
            }
        };
        let id = self.nodes.len() as NodeId;
        let depth = self.nodes[node as usize].depth + 1;
        self.nodes.push(Node { parent: node, symbol, edges: Vec::new(), depth, value: default });
        self.nodes[node as usize].edges.insert(pos, (symbol, id));
        id
    }

    /// Appends a child whose label sorts strictly after every existing edge
    /// of `node` — the fast path for bulk construction in label order
    /// (pruning, freezing), which skips the binary search and the ordered
    /// insert. Debug-asserts the ordering invariant.
    pub fn append_child(&mut self, node: NodeId, symbol: u8, value: V) -> NodeId {
        debug_assert!(
            self.nodes[node as usize].edges.last().is_none_or(|&(s, _)| s < symbol),
            "append_child labels must arrive in strictly increasing order"
        );
        let id = self.nodes.len() as NodeId;
        let depth = self.nodes[node as usize].depth + 1;
        self.nodes.push(Node { parent: node, symbol, edges: Vec::new(), depth, value });
        self.nodes[node as usize].edges.push((symbol, id));
        id
    }

    /// Inserts the full path for `s`, creating missing nodes with values from
    /// `default(depth)`, and returns the id of the terminal node.
    pub fn insert_path(&mut self, s: &[u8], mut default: impl FnMut(usize) -> V) -> NodeId {
        let mut cur = Self::ROOT;
        for (i, &b) in s.iter().enumerate() {
            cur = self.ensure_child(cur, b, default(i + 1));
        }
        cur
    }

    /// Walks the pattern from the root; returns the node spelling `pattern`
    /// if it exists. `O(|pattern| log |Σ|)`.
    pub fn walk(&self, pattern: &[u8]) -> Option<NodeId> {
        let mut cur = Self::ROOT;
        for &b in pattern {
            cur = self.child(cur, b)?;
        }
        Some(cur)
    }

    /// The payload of `node`.
    #[inline]
    pub fn value(&self, node: NodeId) -> &V {
        &self.nodes[node as usize].value
    }

    /// Mutable payload of `node`.
    #[inline]
    pub fn value_mut(&mut self, node: NodeId) -> &mut V {
        &mut self.nodes[node as usize].value
    }

    /// Parent of `node` (the root is its own parent).
    #[inline]
    pub fn parent(&self, node: NodeId) -> NodeId {
        self.nodes[node as usize].parent
    }

    /// Edge symbol from the parent to `node`. Meaningless for the root.
    #[inline]
    pub fn symbol(&self, node: NodeId) -> u8 {
        self.nodes[node as usize].symbol
    }

    /// Depth (= `|str(node)|`).
    #[inline]
    pub fn depth(&self, node: NodeId) -> usize {
        self.nodes[node as usize].depth as usize
    }

    /// Out-edges of `node` as `(label, child)` pairs, sorted by label.
    #[inline]
    pub fn edges(&self, node: NodeId) -> &[(u8, NodeId)] {
        &self.nodes[node as usize].edges
    }

    /// Children of `node`, in edge-label order.
    #[inline]
    pub fn children(
        &self,
        node: NodeId,
    ) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator + '_ {
        self.nodes[node as usize].edges.iter().map(|&(_, c)| c)
    }

    /// Out-degree of `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.nodes[node as usize].edges.len()
    }

    /// Reconstructs `str(node)` by walking parent pointers (`O(depth)`).
    pub fn string_of(&self, node: NodeId) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.depth(node));
        let mut cur = node;
        while cur != Self::ROOT {
            out.push(self.symbol(cur));
            cur = self.parent(cur);
        }
        out.reverse();
        out
    }

    /// Pre-order DFS over all node ids.
    pub fn dfs(&self) -> DfsIter<'_, V> {
        DfsIter { trie: self, stack: vec![Self::ROOT] }
    }

    /// Builds a new trie containing exactly the nodes for which
    /// `keep(node_id, value)` is true *and* whose ancestors are all kept
    /// (subtree pruning: once a node is dropped its whole subtree goes, as
    /// in the paper's Step 6). The root is always kept. Values are mapped
    /// through `map`.
    pub fn prune_map<W>(
        &self,
        mut keep: impl FnMut(NodeId, &V) -> bool,
        mut map: impl FnMut(NodeId, &V) -> W,
    ) -> Trie<W> {
        let mut out = Trie::new(map(Self::ROOT, self.value(Self::ROOT)));
        out.nodes.reserve(self.nodes.len().saturating_sub(1));
        // Stack of (old_id, new_parent_id). Children are pushed in reverse
        // label order, so every new parent receives its surviving children
        // in increasing label order and `append_child` applies.
        let mut stack: Vec<(NodeId, NodeId)> =
            self.edges(Self::ROOT).iter().rev().map(|&(_, c)| (c, Trie::<W>::ROOT)).collect();
        while let Some((old, new_parent)) = stack.pop() {
            if !keep(old, self.value(old)) {
                continue;
            }
            let new_id = out.append_child(new_parent, self.symbol(old), map(old, self.value(old)));
            for &(_, c) in self.edges(old).iter().rev() {
                stack.push((c, new_id));
            }
        }
        out.nodes.shrink_to_fit();
        out
    }

    /// Total number of nodes at each depth; index `d` holds the count of
    /// depth-`d` nodes. Useful for size audits (the paper bounds `|T*|` by
    /// `O(nℓ²)`).
    pub fn depth_histogram(&self) -> Vec<usize> {
        let max_d = self.nodes.iter().map(|n| n.depth as usize).max().unwrap_or(0);
        let mut hist = vec![0usize; max_d + 1];
        for n in &self.nodes {
            hist[n.depth as usize] += 1;
        }
        hist
    }
}

/// Pre-order DFS iterator over node ids.
pub struct DfsIter<'a, V> {
    trie: &'a Trie<V>,
    stack: Vec<NodeId>,
}

impl<V> Iterator for DfsIter<'_, V> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let node = self.stack.pop()?;
        for &(_, c) in self.trie.edges(node).iter().rev() {
            self.stack.push(c);
        }
        Some(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_walk() {
        let mut t: Trie<u64> = Trie::new(0);
        let ab = t.insert_path(b"ab", |_| 0);
        let abc = t.insert_path(b"abc", |_| 0);
        *t.value_mut(ab) = 5;
        *t.value_mut(abc) = 2;
        assert_eq!(t.walk(b"ab"), Some(ab));
        assert_eq!(t.walk(b"abc"), Some(abc));
        assert_eq!(t.walk(b"abd"), None);
        assert_eq!(t.walk(b""), Some(Trie::<u64>::ROOT));
        assert_eq!(*t.value(ab), 5);
        assert_eq!(t.depth(abc), 3);
        assert_eq!(t.string_of(abc), b"abc".to_vec());
        assert_eq!(t.len(), 4); // root, a, ab, abc
    }

    #[test]
    fn children_sorted() {
        let mut t: Trie<()> = Trie::new(());
        for &b in [b'c', b'a', b'z', b'b'].iter() {
            t.insert_path(&[b], |_| ());
        }
        let syms: Vec<u8> = t.edges(Trie::<()>::ROOT).iter().map(|&(s, _)| s).collect();
        assert_eq!(syms, vec![b'a', b'b', b'c', b'z']);
        // Edge labels agree with the child nodes' own symbols.
        for &(s, c) in t.edges(Trie::<()>::ROOT) {
            assert_eq!(s, t.symbol(c));
        }
    }

    #[test]
    fn full_fanout_stress() {
        // 256-way branching node: every byte value inserted in a scrambled
        // order must stay binary-searchable, and lookups must hit the right
        // node (symbol and value agreement) with no misses or cross-talk.
        let mut t: Trie<u16> = Trie::new(0);
        let mut ids = [0 as NodeId; 256];
        for i in 0..256u16 {
            // LCG-scrambled insertion order covering all 256 residues.
            let b = ((i * 167 + 13) % 256) as u8;
            ids[b as usize] = t.ensure_child(Trie::<u16>::ROOT, b, b as u16 + 1);
        }
        assert_eq!(t.len(), 257);
        assert_eq!(t.degree(Trie::<u16>::ROOT), 256);
        // Edge array strictly sorted by label.
        let edges = t.edges(Trie::<u16>::ROOT);
        assert!(edges.windows(2).all(|w| w[0].0 < w[1].0));
        for b in 0..=255u8 {
            let c = t.child(Trie::<u16>::ROOT, b).expect("every byte present");
            assert_eq!(c, ids[b as usize]);
            assert_eq!(t.symbol(c), b);
            assert_eq!(*t.value(c), b as u16 + 1);
            // Re-ensuring returns the existing node, never a duplicate.
            assert_eq!(t.ensure_child(Trie::<u16>::ROOT, b, 999), c);
        }
        assert_eq!(t.len(), 257);
        // Second level under an arbitrary child keeps its own full fanout.
        let mid = ids[128];
        for b in (0..=255u8).rev() {
            t.ensure_child(mid, b, 0);
        }
        assert_eq!(t.degree(mid), 256);
        assert!(t.walk(&[128, 200]).is_some());
        assert!(t.walk(&[129, 200]).is_none());
    }

    #[test]
    fn append_child_matches_ensure_child() {
        let mut a: Trie<u8> = Trie::new(0);
        let mut b: Trie<u8> = Trie::new(0);
        for s in [1u8, 5, 9, 200] {
            a.append_child(Trie::<u8>::ROOT, s, s);
            b.ensure_child(Trie::<u8>::ROOT, s, s);
        }
        for s in 0..=255u8 {
            assert_eq!(a.child(Trie::<u8>::ROOT, s), b.child(Trie::<u8>::ROOT, s));
        }
    }

    #[test]
    fn dfs_preorder_visits_all() {
        let mut t: Trie<u32> = Trie::new(0);
        for s in [&b"aa"[..], b"ab", b"b"] {
            t.insert_path(s, |_| 0);
        }
        let visited: Vec<Vec<u8>> = t.dfs().map(|n| t.string_of(n)).collect();
        assert_eq!(
            visited,
            vec![b"".to_vec(), b"a".to_vec(), b"aa".to_vec(), b"ab".to_vec(), b"b".to_vec()]
        );
    }

    #[test]
    fn prune_removes_subtrees() {
        let mut t: Trie<i64> = Trie::new(100);
        let a = t.insert_path(b"a", |_| 0);
        let ab = t.insert_path(b"ab", |_| 0);
        let abc = t.insert_path(b"abc", |_| 0);
        let b = t.insert_path(b"b", |_| 0);
        *t.value_mut(a) = 10;
        *t.value_mut(ab) = 1; // below threshold → drops abc too
        *t.value_mut(abc) = 50; // would survive alone, but ancestor pruned
        *t.value_mut(b) = 10;
        let pruned = t.prune_map(|_, &v| v >= 5, |_, &v| v);
        assert!(pruned.walk(b"a").is_some());
        assert!(pruned.walk(b"b").is_some());
        assert!(pruned.walk(b"ab").is_none());
        assert!(pruned.walk(b"abc").is_none());
        assert_eq!(pruned.len(), 3);
    }

    #[test]
    fn depth_histogram_counts() {
        let mut t: Trie<()> = Trie::new(());
        t.insert_path(b"aa", |_| ());
        t.insert_path(b"ab", |_| ());
        assert_eq!(t.depth_histogram(), vec![1, 1, 2]);
    }
}
