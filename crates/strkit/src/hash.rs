//! Double polynomial rolling hashes modulo two Mersenne-like primes.
//!
//! Used as the fast path for substring-concatenation lookups (the paper's
//! substring concatenation queries of \[7, 8\]): given candidate halves `Q_1`,
//! `Q_2`, we can compare `hash(Q_1 · Q_2)` against precomputed substring
//! hashes of the corpus in `O(1)` and fall back to suffix-array binary search
//! to confirm (hashes alone are probabilistic; the SA confirms exactly).

const MOD1: u64 = (1 << 61) - 1; // Mersenne prime 2^61 - 1
const MOD2: u64 = (1 << 31) - 1; // Mersenne prime 2^31 - 1
const BASE1: u64 = 0x9E37_79B9; // fixed odd bases; collision analysis below
const BASE2: u64 = 0x85EB_CA6B;

#[inline]
fn mul_mod1(a: u64, b: u64) -> u64 {
    // 2^61-1 fits products in u128 with a cheap fold.
    let prod = a as u128 * b as u128;
    let lo = (prod & MOD1 as u128) as u64;
    let hi = (prod >> 61) as u64;
    let mut r = lo + hi;
    if r >= MOD1 {
        r -= MOD1;
    }
    r
}

#[inline]
fn mul_mod2(a: u64, b: u64) -> u64 {
    (a * b) % MOD2
}

/// Precomputed prefix hashes allowing `O(1)` hashes of any substring and
/// `O(1)` hashes of concatenations of two substrings.
///
/// The false-positive probability of a single comparison over a corpus of
/// length `N` is roughly `N / 2^92` (two independent moduli), negligible for
/// every workload in this repository; exact confirmation paths exist where
/// correctness is load-bearing.
#[derive(Debug, Clone)]
pub struct RollingHash {
    pre1: Vec<u64>,
    pre2: Vec<u64>,
    pow1: Vec<u64>,
    pow2: Vec<u64>,
}

/// Hash value of a string: `(h mod p1, h mod p2, length)`.
///
/// The length is part of the identity so that concatenation is well defined
/// and strings of different lengths never compare equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HashValue {
    h1: u64,
    h2: u64,
    len: u32,
}

impl HashValue {
    /// Hash of the empty string.
    pub const EMPTY: Self = Self { h1: 0, h2: 0, len: 0 };

    /// Length of the hashed string.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether this hashes the empty string.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// 64-bit fingerprint mixing both residues and the length (SplitMix64
    /// finalizer). Used as the probe key of open-addressed candidate
    /// tables; full [`HashValue`] equality is still checked per slot, so
    /// fingerprint collisions cost a probe, never a wrong answer.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        let mut z = self.h1 ^ self.h2.rotate_left(29) ^ ((self.len as u64) << 1);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RollingHash {
    /// Preprocesses `text` over any integer alphabet in `O(n)`.
    pub fn new(text: &[u32]) -> Self {
        let n = text.len();
        let mut pre1 = Vec::with_capacity(n + 1);
        let mut pre2 = Vec::with_capacity(n + 1);
        let mut pow1 = Vec::with_capacity(n + 1);
        let mut pow2 = Vec::with_capacity(n + 1);
        pre1.push(0);
        pre2.push(0);
        pow1.push(1);
        pow2.push(1);
        for (i, &c) in text.iter().enumerate() {
            // Shift symbols by +1 so the zero symbol does not collide with
            // "absent".
            let c1 = c as u64 + 1;
            pre1.push((mul_mod1(pre1[i], BASE1) + c1) % MOD1);
            pre2.push((mul_mod2(pre2[i], BASE2) + c1) % MOD2);
            pow1.push(mul_mod1(pow1[i], BASE1));
            pow2.push(mul_mod2(pow2[i], BASE2));
        }
        Self { pre1, pre2, pow1, pow2 }
    }

    /// Preprocesses a byte text.
    pub fn from_bytes(text: &[u8]) -> Self {
        let ints: Vec<u32> = text.iter().map(|&b| b as u32).collect();
        Self::new(&ints)
    }

    /// Hash of `text[lo..hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or `hi >= len` is violated.
    pub fn substring(&self, lo: usize, hi: usize) -> HashValue {
        assert!(lo <= hi && hi < self.pre1.len(), "substring range out of bounds");
        let len = hi - lo;
        let h1 = (self.pre1[hi] + MOD1 - mul_mod1(self.pre1[lo], self.pow1[len])) % MOD1;
        let h2 = (self.pre2[hi] + MOD2 - mul_mod2(self.pre2[lo], self.pow2[len])) % MOD2;
        HashValue { h1, h2, len: len as u32 }
    }

    /// Hash of the concatenation `a · b` in `O(1)`.
    pub fn concat(&self, a: HashValue, b: HashValue) -> HashValue {
        let h1 = (mul_mod1(a.h1, self.pow1[b.len as usize]) + b.h1) % MOD1;
        let h2 = (mul_mod2(a.h2, self.pow2[b.len as usize]) + b.h2) % MOD2;
        HashValue { h1, h2, len: a.len + b.len }
    }
}

/// Hashes an arbitrary standalone byte string with the same parameters, so
/// results are comparable to [`RollingHash::substring`] values.
pub fn hash_bytes(s: &[u8]) -> HashValue {
    let mut h1: u64 = 0;
    let mut h2: u64 = 0;
    for &b in s {
        let c = b as u64 + 1;
        h1 = (mul_mod1(h1, BASE1) + c) % MOD1;
        h2 = (mul_mod2(h2, BASE2) + c) % MOD2;
    }
    HashValue { h1, h2, len: s.len() as u32 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substring_equality() {
        let text = b"abracadabra";
        let h = RollingHash::from_bytes(text);
        // "abra" at 0 and 7.
        assert_eq!(h.substring(0, 4), h.substring(7, 11));
        // "a" everywhere.
        assert_eq!(h.substring(0, 1), h.substring(3, 4));
        assert_ne!(h.substring(0, 1), h.substring(1, 2));
        // Different lengths never equal even with same prefix.
        assert_ne!(h.substring(0, 1), h.substring(0, 2));
    }

    #[test]
    fn concat_matches_direct() {
        let text = b"abcabcxyz";
        let h = RollingHash::from_bytes(text);
        let ab = h.substring(0, 2);
        let cx = h.substring(5, 7);
        let cat = h.concat(ab, cx);
        assert_eq!(cat, hash_bytes(b"abcx"));
        assert_eq!(h.concat(HashValue::EMPTY, ab), ab);
        assert_eq!(h.concat(ab, HashValue::EMPTY), ab);
    }

    #[test]
    fn standalone_matches_preprocessed() {
        let text = b"hello world";
        let h = RollingHash::from_bytes(text);
        assert_eq!(h.substring(0, 5), hash_bytes(b"hello"));
        assert_eq!(h.substring(6, 11), hash_bytes(b"world"));
        assert_eq!(h.substring(0, 0), HashValue::EMPTY);
    }
}
