//! Suffix array construction (SA-IS) over byte and small-integer texts.
//!
//! The paper builds the suffix tree of `S = S_1 $_1 S_2 $_2 … S_n $_n` (proof
//! of Lemma 7). We build the equivalent suffix *array* in linear time with
//! SA-IS (Nong–Zhang–Chan), plus the LCP array ([`crate::lcp`]); together
//! they expose the same interface (pattern intervals, node frequencies,
//! string depths) as the suffix tree of Farach-Colton et al. \[29, 30\] used by
//! the paper — see DESIGN.md §2 for the substitution table.
//!
//! Two text forms are supported:
//! * plain byte texts ([`SuffixArray::from_bytes`]);
//! * integer texts with alphabets larger than 256
//!   ([`SuffixArray::from_ints`]) — needed for the generalized text with `n`
//!   distinct sentinels `$_1 < … < $_n < Σ`.

/// A suffix array over a text, with rank (inverse) array.
///
/// Invariant: `sa` is a permutation of `0..n` such that
/// `text[sa[i]..] < text[sa[i+1]..]` lexicographically, and
/// `rank[sa[i]] == i`.
#[derive(Debug, Clone)]
pub struct SuffixArray {
    sa: Vec<u32>,
    rank: Vec<u32>,
}

impl SuffixArray {
    /// Builds the suffix array of a byte text in `O(n)` time.
    ///
    /// Specialized byte path: bytes always fit the `σ = 256` alphabet, so
    /// this skips both the per-symbol alphabet check and the intermediate
    /// `Vec<u32>` copy that routing through [`Self::from_ints`] would cost,
    /// building the shifted SA-IS input directly.
    pub fn from_bytes(text: &[u8]) -> Self {
        assert!(text.len() <= u32::MAX as usize - 2, "text too long for u32 indexing");
        let n = text.len();
        if n == 0 {
            return Self { sa: Vec::new(), rank: Vec::new() };
        }
        let mut s: Vec<usize> = Vec::with_capacity(n + 1);
        s.extend(text.iter().map(|&b| b as usize + 1));
        s.push(0);
        Self::from_shifted(&s, 257)
    }

    /// Builds the suffix array of an integer text whose symbols lie in
    /// `[0, sigma)` in `O(n + sigma)` time.
    ///
    /// # Panics
    /// Panics if any symbol is `>= sigma`.
    pub fn from_ints(text: &[u32], sigma: usize) -> Self {
        assert!(
            text.iter().all(|&c| (c as usize) < sigma),
            "text symbol outside declared alphabet"
        );
        assert!(text.len() <= u32::MAX as usize - 2, "text too long for u32 indexing");
        let n = text.len();
        if n == 0 {
            return Self { sa: Vec::new(), rank: Vec::new() };
        }
        // Shift symbols by +1 and append a unique smallest sentinel 0; SA-IS
        // requires the sentinel. We strip it from the result.
        let mut s: Vec<usize> = Vec::with_capacity(n + 1);
        s.extend(text.iter().map(|&c| c as usize + 1));
        s.push(0);
        Self::from_shifted(&s, sigma + 1)
    }

    /// Shared tail of the constructors: runs SA-IS on the already-shifted,
    /// sentinel-terminated input `s` and strips the sentinel suffix.
    fn from_shifted(s: &[usize], sigma: usize) -> Self {
        let n = s.len() - 1;
        let sa_with_sentinel = sais(s, sigma);
        // sa_with_sentinel[0] is the sentinel suffix (position n); drop it.
        debug_assert_eq!(sa_with_sentinel[0], n);
        let sa: Vec<u32> = sa_with_sentinel[1..].iter().map(|&i| i as u32).collect();
        let mut rank = vec![0u32; n];
        for (r, &p) in sa.iter().enumerate() {
            rank[p as usize] = r as u32;
        }
        Self { sa, rank }
    }

    /// The suffix array: `self.sa()[i]` is the start of the `i`-th smallest
    /// suffix.
    #[inline]
    pub fn sa(&self) -> &[u32] {
        &self.sa
    }

    /// The inverse permutation: `self.rank()[p]` is the lexicographic rank of
    /// the suffix starting at `p`.
    #[inline]
    pub fn rank(&self) -> &[u32] {
        &self.rank
    }

    /// Text length.
    #[inline]
    pub fn len(&self) -> usize {
        self.sa.len()
    }

    /// Whether the text is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sa.is_empty()
    }
}

/// Naive `O(n² log n)` suffix array used as ground truth in tests.
pub fn naive_suffix_array(text: &[u8]) -> Vec<u32> {
    let mut sa: Vec<u32> = (0..text.len() as u32).collect();
    sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
    sa
}

/// SA-IS over `s` with symbols in `[0, sigma)`; `s` must end with a unique
/// smallest sentinel (value 0 appearing exactly once, at the end).
fn sais(s: &[usize], sigma: usize) -> Vec<usize> {
    let n = s.len();
    debug_assert!(n >= 1);
    debug_assert_eq!(s[n - 1], 0);
    if n == 1 {
        return vec![0];
    }
    let mut sa = vec![usize::MAX; n];
    sais_inner(s, sigma, &mut sa);
    sa
}

/// Type of each suffix: S-type (`true`) or L-type (`false`).
fn classify(s: &[usize]) -> Vec<bool> {
    let n = s.len();
    let mut is_s = vec![false; n];
    is_s[n - 1] = true;
    for i in (0..n - 1).rev() {
        is_s[i] = s[i] < s[i + 1] || (s[i] == s[i + 1] && is_s[i + 1]);
    }
    is_s
}

#[inline]
fn is_lms(is_s: &[bool], i: usize) -> bool {
    i > 0 && is_s[i] && !is_s[i - 1]
}

/// Computes, for each symbol, the exclusive end of its bucket (`tails=true`)
/// or the inclusive start (`tails=false`).
fn buckets(s: &[usize], sigma: usize, tails: bool) -> Vec<usize> {
    let mut count = vec![0usize; sigma];
    for &c in s {
        count[c] += 1;
    }
    let mut out = vec![0usize; sigma];
    let mut sum = 0usize;
    for c in 0..sigma {
        if tails {
            sum += count[c];
            out[c] = sum; // exclusive end
        } else {
            out[c] = sum; // inclusive start
            sum += count[c];
        }
    }
    out
}

/// Induced sorting: given LMS suffixes already placed in `sa` (everything
/// else `usize::MAX`), fill in L-type then S-type suffixes.
fn induce(s: &[usize], sigma: usize, is_s: &[bool], sa: &mut [usize]) {
    let n = s.len();
    // Left-to-right pass placing L-type suffixes at bucket heads.
    let mut heads = buckets(s, sigma, false);
    for i in 0..n {
        let p = sa[i];
        if p == usize::MAX || p == 0 {
            continue;
        }
        let j = p - 1;
        if !is_s[j] {
            let c = s[j];
            sa[heads[c]] = j;
            heads[c] += 1;
        }
    }
    // Right-to-left pass placing S-type suffixes at bucket tails.
    let mut tails = buckets(s, sigma, true);
    for i in (0..n).rev() {
        let p = sa[i];
        if p == usize::MAX || p == 0 {
            continue;
        }
        let j = p - 1;
        if is_s[j] {
            let c = s[j];
            tails[c] -= 1;
            sa[tails[c]] = j;
        }
    }
}

fn sais_inner(s: &[usize], sigma: usize, sa: &mut [usize]) {
    let n = s.len();
    let is_s = classify(s);

    // Step 1: place LMS suffixes at the ends of their buckets (arbitrary
    // order) and induce to approximately sort them.
    sa.fill(usize::MAX);
    {
        let mut tails = buckets(s, sigma, true);
        for i in (1..n).rev() {
            if is_lms(&is_s, i) {
                let c = s[i];
                tails[c] -= 1;
                sa[tails[c]] = i;
            }
        }
    }
    induce(s, sigma, &is_s, sa);

    // Step 2: compact the (now sorted) LMS suffixes and name their LMS
    // substrings.
    let mut lms_sorted: Vec<usize> = sa.iter().copied().filter(|&p| is_lms(&is_s, p)).collect();
    let num_lms = lms_sorted.len();
    // Name LMS substrings in sorted order; equal adjacent substrings share a
    // name.
    let mut name_of = vec![usize::MAX; n];
    let mut name = 0usize;
    let mut prev = usize::MAX;
    for &p in &lms_sorted {
        if prev != usize::MAX && !lms_substrings_equal(s, &is_s, prev, p) {
            name += 1;
        }
        if prev == usize::MAX {
            // first LMS substring gets name 0
        }
        name_of[p] = name;
        prev = p;
    }
    let num_names = if num_lms == 0 { 0 } else { name + 1 };

    // Step 3: if names are not yet unique, recurse on the reduced string.
    let lms_positions: Vec<usize> = (1..n).filter(|&i| is_lms(&is_s, i)).collect();
    if num_names < num_lms {
        let reduced: Vec<usize> = lms_positions.iter().map(|&p| name_of[p]).collect();
        // The reduced string ends with the sentinel's LMS (position n-1 has
        // name 0 and is the unique minimum because the sentinel is unique).
        let mut sub_sa = vec![usize::MAX; reduced.len()];
        sais_inner(&reduced, num_names, &mut sub_sa);
        for (r, &idx) in sub_sa.iter().enumerate() {
            lms_sorted[r] = lms_positions[idx];
        }
    } else {
        // Names unique: order LMS positions by name directly.
        for &p in &lms_positions {
            lms_sorted[name_of[p]] = p;
        }
        lms_sorted.truncate(num_lms);
    }

    // Step 4: final induced sort from the exactly-sorted LMS suffixes.
    sa.fill(usize::MAX);
    {
        let mut tails = buckets(s, sigma, true);
        for &p in lms_sorted.iter().rev() {
            let c = s[p];
            tails[c] -= 1;
            sa[tails[c]] = p;
        }
    }
    induce(s, sigma, &is_s, sa);
}

/// Compares the LMS substrings starting at `a` and `b` for equality.
///
/// An LMS substring runs from an LMS position to the next LMS position
/// (inclusive); the sentinel's LMS substring is just the sentinel.
fn lms_substrings_equal(s: &[usize], is_s: &[bool], a: usize, b: usize) -> bool {
    let n = s.len();
    if a == n - 1 || b == n - 1 {
        return a == b;
    }
    let mut i = 0usize;
    loop {
        let pa = a + i;
        let pb = b + i;
        let a_end = i > 0 && is_lms(is_s, pa);
        let b_end = i > 0 && is_lms(is_s, pb);
        if a_end && b_end {
            return true;
        }
        if a_end != b_end || s[pa] != s[pb] || is_s[pa] != is_s[pb] {
            return false;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(text: &[u8]) {
        let sa = SuffixArray::from_bytes(text);
        let expected = naive_suffix_array(text);
        assert_eq!(sa.sa(), expected.as_slice(), "text={:?}", text);
        for (r, &p) in sa.sa().iter().enumerate() {
            assert_eq!(sa.rank()[p as usize] as usize, r);
        }
    }

    #[test]
    fn empty_and_tiny() {
        check(b"");
        check(b"a");
        check(b"aa");
        check(b"ab");
        check(b"ba");
    }

    #[test]
    fn classic_examples() {
        check(b"banana");
        check(b"mississippi");
        check(b"abracadabra");
        check(b"aaaaaaaaaa");
        check(b"abababab");
        check(b"cabbage");
    }

    #[test]
    fn paper_concatenation() {
        // S = S_1 $_1 ... S_n $_n with sentinels encoded as ints below Σ.
        let docs: [&[u8]; 3] = [b"aaaa", b"abe", b"absab"];
        let mut ints = Vec::new();
        let n_docs = docs.len() as u32;
        for (i, d) in docs.iter().enumerate() {
            ints.extend(d.iter().map(|&b| b as u32 + n_docs));
            ints.push(i as u32); // sentinel $_i, all distinct and < letters
        }
        let sa = SuffixArray::from_ints(&ints, 256 + n_docs as usize);
        // Validate against a naive sort of the integer suffixes.
        let mut expected: Vec<u32> = (0..ints.len() as u32).collect();
        expected.sort_by(|&a, &b| ints[a as usize..].cmp(&ints[b as usize..]));
        assert_eq!(sa.sa(), expected.as_slice());
    }

    #[test]
    fn byte_and_int_constructors_agree() {
        // The specialized byte path must produce bit-identical output to
        // routing the same text through the generic integer path.
        let mut state = 0x9E37_79B9_7F4A_7C15u64; // splitmix64
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for trial in 0..40 {
            let len = (next() % 200) as usize;
            // Mix narrow and full-byte alphabets across trials.
            let sigma = if trial % 2 == 0 { 3 } else { 256 };
            let text: Vec<u8> = (0..len).map(|_| (next() % sigma) as u8).collect();
            let by_bytes = SuffixArray::from_bytes(&text);
            let ints: Vec<u32> = text.iter().map(|&b| b as u32).collect();
            let by_ints = SuffixArray::from_ints(&ints, 256);
            assert_eq!(by_bytes.sa(), by_ints.sa(), "trial {trial}, text={text:?}");
            assert_eq!(by_bytes.rank(), by_ints.rank(), "trial {trial}");
        }
    }

    #[test]
    fn all_distinct_symbols() {
        check(b"zyxwvutsrq");
        check(b"abcdefghij");
    }

    #[test]
    fn repetitive_blocks() {
        check(b"aabaabaabaab");
        check(b"abaababaabaababaababa");
    }
}
