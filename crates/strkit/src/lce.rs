//! Longest-common-extension (LCE) queries.
//!
//! `LCE(i, j)` = length of the longest common prefix of the suffixes starting
//! at text positions `i` and `j`. The paper uses LCE queries over the pooled
//! candidate strings to find suffix/prefix overlaps when assembling the
//! candidate sets `C_m` (proof of Lemma 7, Step 2). We answer them in `O(1)`
//! via suffix array + LCP + sparse-table RMQ.

use crate::lcp::LcpArray;
use crate::rmq::SparseTableRmq;
use crate::suffix_array::SuffixArray;

/// LCE structure over an integer text.
#[derive(Debug, Clone)]
pub struct Lce {
    rank: Vec<u32>,
    rmq: SparseTableRmq,
    n: usize,
}

impl Lce {
    /// Builds from a precomputed suffix array and LCP array.
    pub fn new(sa: &SuffixArray, lcp: &LcpArray) -> Self {
        assert_eq!(sa.len(), lcp.len());
        Self { rank: sa.rank().to_vec(), rmq: SparseTableRmq::new(lcp.values()), n: sa.len() }
    }

    /// Builds directly from a byte text.
    pub fn from_bytes(text: &[u8]) -> Self {
        let sa = SuffixArray::from_bytes(text);
        let lcp = LcpArray::build(text, &sa);
        Self::new(&sa, &lcp)
    }

    /// Length of the longest common prefix of the suffixes at positions `i`
    /// and `j`.
    ///
    /// # Panics
    /// Panics if `i` or `j` is out of range.
    pub fn lce(&self, i: usize, j: usize) -> usize {
        assert!(i <= self.n && j <= self.n, "position out of range");
        if i == j {
            return self.n - i;
        }
        if i == self.n || j == self.n {
            return 0;
        }
        let (mut a, mut b) = (self.rank[i] as usize, self.rank[j] as usize);
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        self.rmq.min(a + 1, b + 1) as usize
    }

    /// Text length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the text is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcp::naive_lcp;

    fn check(text: &[u8]) {
        let lce = Lce::from_bytes(text);
        for i in 0..=text.len() {
            for j in 0..=text.len() {
                assert_eq!(
                    lce.lce(i, j),
                    naive_lcp(&text[i..], &text[j..]),
                    "lce({i},{j}) on {:?}",
                    text
                );
            }
        }
    }

    #[test]
    fn matches_naive() {
        check(b"banana");
        check(b"aaaa");
        check(b"abcab");
        check(b"a");
    }
}
