//! Pattern search over suffix arrays.
//!
//! Finds the *suffix-array interval* of a pattern: the contiguous range of
//! ranks whose suffixes start with the pattern. Its width is exactly
//! `count(P, text)`, which is the quantity all the paper's mechanisms
//! privatize. Binary search costs `O(|P| log n)` per lookup — the paper's
//! fancier `O(log log)` substring-concatenation structure is substituted by
//! this plus the rolling-hash fast path (DESIGN.md §2).

use crate::suffix_array::SuffixArray;

/// Half-open interval `[lo, hi)` of suffix-array ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaInterval {
    /// First rank whose suffix starts with the pattern.
    pub lo: u32,
    /// One past the last such rank.
    pub hi: u32,
}

impl SaInterval {
    /// An empty interval.
    pub const EMPTY: Self = Self { lo: 0, hi: 0 };

    /// Number of occurrences represented by the interval.
    #[inline]
    pub fn count(&self) -> usize {
        (self.hi - self.lo) as usize
    }

    /// Whether the interval is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }
}

/// Compares `pattern` against the prefix of `text[suffix..]`.
///
/// Returns `Less`/`Greater` like a lexicographic comparison where the suffix
/// is truncated to `pattern.len()` symbols; `Equal` means the suffix starts
/// with the pattern.
#[inline]
fn cmp_prefix<T: Ord>(pattern: &[T], text: &[T], suffix: usize) -> std::cmp::Ordering {
    let avail = &text[suffix..];
    let k = pattern.len().min(avail.len());
    match avail[..k].cmp(&pattern[..k]) {
        std::cmp::Ordering::Equal => {
            if avail.len() >= pattern.len() {
                std::cmp::Ordering::Equal
            } else {
                // The suffix is a proper prefix of the pattern → suffix < P.
                std::cmp::Ordering::Less
            }
        }
        other => other,
    }
}

/// Finds the suffix-array interval of `pattern` in `text` under `sa`.
///
/// `O(|P| log n)` time. Returns [`SaInterval::EMPTY`]-like `lo == hi`
/// intervals when the pattern is absent. The empty pattern matches every
/// suffix, i.e. the full interval `[0, n)`.
pub fn find_interval<T: Ord>(pattern: &[T], text: &[T], sa: &SuffixArray) -> SaInterval {
    let n = sa.len();
    if pattern.is_empty() {
        return SaInterval { lo: 0, hi: n as u32 };
    }
    let sa_arr = sa.sa();
    // Lower bound: first rank with suffix >= P (prefix-truncated ordering).
    let lo = partition_point(n, |r| {
        cmp_prefix(pattern, text, sa_arr[r] as usize) == std::cmp::Ordering::Less
    });
    // Upper bound: first rank with suffix > P, i.e. not (suffix starts with P
    // or suffix < P).
    let hi = partition_point(n, |r| {
        cmp_prefix(pattern, text, sa_arr[r] as usize) != std::cmp::Ordering::Greater
    });
    SaInterval { lo: lo as u32, hi: hi as u32 }
}

/// First index in `[0, n)` where `pred` flips from true to false
/// (`pred` must be monotone).
fn partition_point(n: usize, pred: impl Fn(usize) -> bool) -> usize {
    let mut lo = 0usize;
    let mut hi = n;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Total number of occurrences of `pattern` in `text` via the suffix array.
pub fn count_occurrences<T: Ord>(pattern: &[T], text: &[T], sa: &SuffixArray) -> usize {
    find_interval(pattern, text, sa).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_count;

    fn check_all_patterns(text: &[u8], max_pat: usize) {
        let sa = SuffixArray::from_bytes(text);
        // Every substring of the text plus some absent patterns.
        let mut pats: Vec<Vec<u8>> = Vec::new();
        for i in 0..text.len() {
            for j in i + 1..=text.len().min(i + max_pat) {
                pats.push(text[i..j].to_vec());
            }
        }
        pats.push(b"zzz".to_vec());
        pats.push(b"".to_vec());
        for p in pats {
            assert_eq!(
                count_occurrences(&p[..], text, &sa),
                naive_count(&p, text),
                "pattern {:?} in {:?}",
                p,
                text
            );
        }
    }

    #[test]
    fn counts_match_naive() {
        check_all_patterns(b"banana", 6);
        check_all_patterns(b"mississippi", 5);
        check_all_patterns(b"aaaaaa", 6);
        check_all_patterns(b"abcabcab", 4);
    }

    #[test]
    fn interval_positions_are_occurrences() {
        let text = b"abracadabra";
        let sa = SuffixArray::from_bytes(text);
        let iv = find_interval(b"abra", text, &sa);
        let mut pos: Vec<u32> = sa.sa()[iv.lo as usize..iv.hi as usize].to_vec();
        pos.sort_unstable();
        assert_eq!(pos, vec![0, 7]);
    }

    #[test]
    fn integer_text_search() {
        let text: Vec<u32> = vec![5, 1, 5, 1, 5, 9, 5, 1];
        let sa = SuffixArray::from_ints(&text, 10);
        assert_eq!(count_occurrences(&[5u32, 1], &text, &sa), 3);
        assert_eq!(count_occurrences(&[5u32, 9], &text, &sa), 1);
        assert_eq!(count_occurrences(&[9u32, 9], &text, &sa), 0);
    }
}
