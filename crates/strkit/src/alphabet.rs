//! Alphabets and document collections.
//!
//! The paper's data universe is `Σ^[1,ℓ]`: documents are non-empty strings of
//! length at most `ℓ` over an alphabet `Σ`. [`Alphabet`] captures `Σ` as a
//! contiguous range of byte values (all generators in `dpsc-workloads` emit
//! such alphabets), and [`Database`] captures the collection
//! `D = S_1, …, S_n` together with its parameters `n`, `ℓ`, `|Σ|`.

use std::fmt;

/// A finite alphabet `Σ`, represented as a contiguous byte range
/// `[base, base + size)`.
///
/// Keeping the alphabet contiguous makes symbol ↔ index conversion free and
/// lets the candidate-set construction of the paper's Step 1 iterate over
/// "all letters γ ∈ Σ" without an auxiliary table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Alphabet {
    base: u8,
    size: u16,
}

impl Alphabet {
    /// Creates an alphabet of `size` symbols starting at byte `base`.
    ///
    /// # Panics
    /// Panics if `size == 0` or `base as usize + size > 256`.
    pub fn new(base: u8, size: u16) -> Self {
        assert!(size > 0, "alphabet must be non-empty");
        assert!(base as usize + size as usize <= 256, "alphabet range exceeds byte values");
        Self { base, size }
    }

    /// The lowercase ASCII alphabet `a..=z` truncated to `size` symbols.
    ///
    /// # Panics
    /// Panics if `size == 0` or `size > 26`.
    pub fn lowercase(size: u16) -> Self {
        assert!((1..=26).contains(&size), "lowercase alphabet size must be 1..=26");
        Self::new(b'a', size)
    }

    /// The DNA alphabet `{A, C, G, T}` (as a contiguous range it is encoded
    /// `0..4`; use [`Alphabet::dna_decode`] for display).
    pub fn dna() -> Self {
        Self::new(0, 4)
    }

    /// Decodes a DNA-encoded byte (0..4) to its ASCII letter.
    pub fn dna_decode(sym: u8) -> char {
        match sym {
            0 => 'A',
            1 => 'C',
            2 => 'G',
            3 => 'T',
            _ => '?',
        }
    }

    /// Binary alphabet `{0, 1}` over raw bytes 0 and 1.
    pub fn binary() -> Self {
        Self::new(0, 2)
    }

    /// Number of symbols `|Σ|`.
    #[inline]
    pub fn size(&self) -> usize {
        self.size as usize
    }

    /// Smallest byte value in the alphabet.
    #[inline]
    pub fn base(&self) -> u8 {
        self.base
    }

    /// Returns `true` iff `b` is a symbol of this alphabet.
    #[inline]
    pub fn contains(&self, b: u8) -> bool {
        b >= self.base && (b as usize) < self.base as usize + self.size as usize
    }

    /// Iterates over all symbols of the alphabet in increasing order.
    pub fn symbols(&self) -> impl Iterator<Item = u8> + '_ {
        (self.base as usize..self.base as usize + self.size as usize).map(|b| b as u8)
    }

    /// Converts a symbol to its 0-based index within the alphabet.
    ///
    /// # Panics
    /// Panics in debug builds if `b` is not in the alphabet.
    #[inline]
    pub fn index_of(&self, b: u8) -> usize {
        debug_assert!(self.contains(b), "symbol {b} outside alphabet");
        (b - self.base) as usize
    }

    /// Converts a 0-based index to the corresponding symbol.
    ///
    /// # Panics
    /// Panics in debug builds if `idx >= self.size()`.
    #[inline]
    pub fn symbol_at(&self, idx: usize) -> u8 {
        debug_assert!(idx < self.size(), "index {idx} outside alphabet");
        self.base + idx as u8
    }

    /// Checks that every byte of `s` belongs to the alphabet.
    pub fn validate(&self, s: &[u8]) -> bool {
        s.iter().all(|&b| self.contains(b))
    }
}

impl fmt::Display for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Σ[{}..{}] (|Σ|={})", self.base, self.base as usize + self.size(), self.size())
    }
}

/// A database `D = S_1, …, S_n` of documents over an [`Alphabet`].
///
/// Documents are byte strings of length in `[1, ℓ]`. `ℓ` is the *declared*
/// maximum length: the privacy analysis of the paper is in terms of the
/// declared `ℓ`, which upper-bounds every document (neighboring databases
/// replace one document by another of length ≤ ℓ).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Database {
    alphabet: Alphabet,
    max_len: usize,
    documents: Vec<Vec<u8>>,
}

impl Database {
    /// Creates a database, validating every document against the alphabet
    /// and the declared maximum length `max_len` (= `ℓ`).
    ///
    /// # Errors
    /// Returns a description of the first offending document if any document
    /// is empty, longer than `max_len`, or contains symbols outside the
    /// alphabet.
    pub fn new(
        alphabet: Alphabet,
        max_len: usize,
        documents: Vec<Vec<u8>>,
    ) -> Result<Self, DatabaseError> {
        assert!(max_len > 0, "max_len must be positive");
        for (i, doc) in documents.iter().enumerate() {
            if doc.is_empty() {
                return Err(DatabaseError::EmptyDocument { index: i });
            }
            if doc.len() > max_len {
                return Err(DatabaseError::TooLong { index: i, len: doc.len(), max_len });
            }
            if !alphabet.validate(doc) {
                return Err(DatabaseError::BadSymbol { index: i });
            }
        }
        Ok(Self { alphabet, max_len, documents })
    }

    /// Convenience constructor that infers `ℓ` as the longest document length
    /// (at least 1) and validates symbols.
    pub fn from_documents(
        alphabet: Alphabet,
        documents: Vec<Vec<u8>>,
    ) -> Result<Self, DatabaseError> {
        let max_len = documents.iter().map(Vec::len).max().unwrap_or(1).max(1);
        Self::new(alphabet, max_len, documents)
    }

    /// The paper's running example (Example 1):
    /// `D = {aaaa, abe, absab, babe, bee, bees}` over `Σ = {a, …, z}`.
    pub fn paper_example() -> Self {
        let docs = ["aaaa", "abe", "absab", "babe", "bee", "bees"]
            .iter()
            .map(|s| s.as_bytes().to_vec())
            .collect();
        Self::new(Alphabet::lowercase(26), 5, docs).expect("paper example is valid")
    }

    /// Number of documents `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.documents.len()
    }

    /// Declared maximum document length `ℓ`.
    #[inline]
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// The alphabet `Σ`.
    #[inline]
    pub fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    /// The documents.
    #[inline]
    pub fn documents(&self) -> &[Vec<u8>] {
        &self.documents
    }

    /// Document `i`.
    #[inline]
    pub fn document(&self, i: usize) -> &[u8] {
        &self.documents[i]
    }

    /// Total number of symbols across all documents (≤ `nℓ`).
    pub fn total_len(&self) -> usize {
        self.documents.iter().map(Vec::len).sum()
    }

    /// Replaces document `i` with `replacement`, yielding a *neighboring*
    /// database in the sense of the paper (Definition 1's neighboring
    /// relation `D ∼ D'`).
    ///
    /// # Errors
    /// Same validation as [`Database::new`] applied to the replacement.
    pub fn neighbor_replacing(
        &self,
        i: usize,
        replacement: Vec<u8>,
    ) -> Result<Self, DatabaseError> {
        assert!(i < self.n(), "document index out of range");
        if replacement.is_empty() {
            return Err(DatabaseError::EmptyDocument { index: i });
        }
        if replacement.len() > self.max_len {
            return Err(DatabaseError::TooLong {
                index: i,
                len: replacement.len(),
                max_len: self.max_len,
            });
        }
        if !self.alphabet.validate(&replacement) {
            return Err(DatabaseError::BadSymbol { index: i });
        }
        let mut documents = self.documents.clone();
        documents[i] = replacement;
        Ok(Self { alphabet: self.alphabet, max_len: self.max_len, documents })
    }
}

/// Validation failure when constructing a [`Database`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatabaseError {
    /// Document `index` is empty (the universe is `Σ^[1,ℓ]`, not `Σ^[0,ℓ]`).
    EmptyDocument { index: usize },
    /// Document `index` has `len > max_len`.
    TooLong { index: usize, len: usize, max_len: usize },
    /// Document `index` contains a byte outside the alphabet.
    BadSymbol { index: usize },
}

impl fmt::Display for DatabaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyDocument { index } => write!(f, "document {index} is empty"),
            Self::TooLong { index, len, max_len } => {
                write!(f, "document {index} has length {len} > ℓ = {max_len}")
            }
            Self::BadSymbol { index } => {
                write!(f, "document {index} contains a symbol outside the alphabet")
            }
        }
    }
}

impl std::error::Error for DatabaseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_roundtrip() {
        let a = Alphabet::lowercase(4);
        assert_eq!(a.size(), 4);
        assert!(a.contains(b'a') && a.contains(b'd'));
        assert!(!a.contains(b'e'));
        let syms: Vec<u8> = a.symbols().collect();
        assert_eq!(syms, vec![b'a', b'b', b'c', b'd']);
        for (i, s) in syms.iter().enumerate() {
            assert_eq!(a.index_of(*s), i);
            assert_eq!(a.symbol_at(i), *s);
        }
    }

    #[test]
    fn dna_alphabet() {
        let a = Alphabet::dna();
        assert_eq!(a.size(), 4);
        assert_eq!(Alphabet::dna_decode(2), 'G');
    }

    #[test]
    #[should_panic]
    fn alphabet_overflow_panics() {
        let _ = Alphabet::new(250, 10);
    }

    #[test]
    fn database_validation() {
        let a = Alphabet::lowercase(3);
        assert!(Database::new(a, 4, vec![b"abc".to_vec()]).is_ok());
        assert!(matches!(
            Database::new(a, 4, vec![vec![]]),
            Err(DatabaseError::EmptyDocument { index: 0 })
        ));
        assert!(matches!(
            Database::new(a, 2, vec![b"abc".to_vec()]),
            Err(DatabaseError::TooLong { .. })
        ));
        assert!(matches!(
            Database::new(a, 4, vec![b"abz".to_vec()]),
            Err(DatabaseError::BadSymbol { index: 0 })
        ));
    }

    #[test]
    fn paper_example_counts() {
        let db = Database::paper_example();
        assert_eq!(db.n(), 6);
        assert_eq!(db.max_len(), 5);
        // count_1(ab, D) = 3, count(ab, D) = 4 (Example 1).
        let doc_count = db.documents().iter().filter(|d| crate::naive_contains(b"ab", d)).count();
        let sub_count: usize = db.documents().iter().map(|d| crate::naive_count(b"ab", d)).sum();
        assert_eq!(doc_count, 3);
        assert_eq!(sub_count, 4);
    }

    #[test]
    fn neighbor_replacing_is_single_substitution() {
        let db = Database::paper_example();
        let nb = db.neighbor_replacing(2, b"zzz".to_vec()).unwrap();
        assert_eq!(nb.n(), db.n());
        let diff = db.documents().iter().zip(nb.documents()).filter(|(a, b)| a != b).count();
        assert_eq!(diff, 1);
    }
}
