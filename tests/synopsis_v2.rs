//! Robustness of the `DPSF` v2 snapshot codec on a *real* DP-built
//! structure, mirroring `synopsis_serialization.rs` for both v2 dialects
//! (uncompressed/borrowable and delta-compressed): exact round-trips,
//! `Err` (never a panic) on truncations, bit flips, splices, and noise,
//! forged-but-restamped non-finite fields, and a differential sweep
//! asserting that v1-decoded, v2-owned, and v2-borrowed synopses answer
//! bit-identically.

mod common;

use std::sync::Arc;

use dp_substring_counting::prelude::*;
use dp_substring_counting::private_count::codec::fnv1a;
use dp_substring_counting::workloads::markov_corpus;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// v2 header layout landmarks (see DESIGN.md §13): the section table
// starts at 88 with 24-byte entries {offset, len, checksum}, the header
// checksum sits at 184, and sections begin at 192.
const TABLE_OFF: usize = 88;
const TABLE_ENTRY_LEN: usize = 24;
const HEADER_SUM_OFF: usize = 184;
const ALPHA_COUNTS_OFF: usize = 40;
const ALPHA_ABSENT_OFF: usize = 48;

/// A genuinely constructed (Theorem 1) synopsis plus its corpus.
fn built() -> (PrivateCountStructure, FrozenSynopsis, Vec<Vec<u8>>) {
    let mut rng = StdRng::seed_from_u64(11);
    let db = markov_corpus(60, 16, 4, 0.6, &mut rng);
    let idx = CorpusIndex::build(&db);
    let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(1e4), 0.1)
        .with_thresholds(1.5, 1.5);
    let s = build_pure(&idx, &params, &mut rng).expect("construction succeeds");
    let f = s.freeze();
    (s, f, db.documents().to_vec())
}

fn le_u64(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap())
}

/// `(offset, len)` of section `i` read straight from the wire table.
fn section(bytes: &[u8], i: usize) -> (usize, usize) {
    let entry = TABLE_OFF + TABLE_ENTRY_LEN * i;
    (le_u64(bytes, entry) as usize, le_u64(bytes, entry + 8) as usize)
}

/// Applies `patch`, then recomputes every section checksum and the header
/// checksum so the damage is *only* the patched field — exactly what a
/// forging adversary who controls the whole byte string can do.
fn patch_and_restamp_v2(bytes: &[u8], at: usize, patch: &[u8]) -> Vec<u8> {
    let mut out = bytes.to_vec();
    out[at..at + patch.len()].copy_from_slice(patch);
    for i in 0..4 {
        let (off, len) = section(&out, i);
        let sum = fnv1a(&out[off..off + len]).to_le_bytes();
        let entry = TABLE_OFF + TABLE_ENTRY_LEN * i;
        out[entry + 16..entry + 24].copy_from_slice(&sum);
    }
    let header_sum = fnv1a(&out[..HEADER_SUM_OFF]).to_le_bytes();
    out[HEADER_SUM_OFF..HEADER_SUM_OFF + 8].copy_from_slice(&header_sum);
    out
}

#[test]
fn v2_roundtrip_preserves_queries_exactly() {
    let (structure, frozen, docs) = built();
    for compressed in [false, true] {
        let bytes = frozen.to_bytes_v2(compressed);
        let back = FrozenSynopsis::from_bytes(&bytes).expect("round-trip parses");
        assert_eq!(back, frozen);
        assert_eq!(back.codec(), SnapshotCodec::V2 { compressed });
        for doc in &docs {
            for i in 0..doc.len() {
                for j in i + 1..=doc.len() {
                    let pat = &doc[i..j];
                    assert_eq!(back.query(pat).to_bits(), structure.query(pat).to_bits());
                }
            }
        }
        // Serializing the decoded synopsis reproduces the identical bytes.
        assert_eq!(back.to_bytes(), bytes, "compressed={compressed} not canonical");
        assert_eq!(back.serialized_len(), bytes.len());
    }
}

#[test]
fn v2_truncations_and_extensions_error() {
    let (_, frozen, _) = built();
    for compressed in [false, true] {
        let bytes = frozen.to_bytes_v2(compressed);
        // Every strict prefix fails — the whole 192-byte header territory
        // is covered exhaustively, the sections by stride.
        for len in (0..bytes.len()).filter(|&l| l < 200 || l % 37 == 0) {
            assert!(
                FrozenSynopsis::from_bytes(&bytes[..len]).is_err(),
                "prefix {len} parsed (compressed={compressed})"
            );
        }
        for extra in [1usize, 8, 1024] {
            let mut e = bytes.clone();
            e.extend(std::iter::repeat_n(0xAB, extra));
            assert!(
                FrozenSynopsis::from_bytes(&e).is_err(),
                "extension {extra} parsed (compressed={compressed})"
            );
        }
    }
}

#[test]
fn v2_bit_flip_corpus_errors() {
    let (_, frozen, _) = built();
    for compressed in [false, true] {
        let bytes = frozen.to_bytes_v2(compressed);
        // Strided single-bit flips across header, section table, section
        // payloads, alignment padding, and checksums; the stride is
        // coprime to 8 so every bit index is exercised.
        for pos in (0..bytes.len()).step_by(13) {
            for bit in 0..8 {
                let mut m = bytes.clone();
                m[pos] ^= 1 << bit;
                assert!(
                    FrozenSynopsis::from_bytes(&m).is_err(),
                    "bit {bit} of byte {pos}/{} flipped silently (compressed={compressed})",
                    bytes.len()
                );
            }
        }
    }
}

#[test]
fn v2_alignment_padding_is_validated() {
    let (_, frozen, _) = built();
    let bytes = frozen.to_bytes_v2(true);
    // Compressed sections have data-dependent lengths, so padding gaps
    // between them are near-certain. Corrupt every padding byte in turn:
    // it is outside all section checksums, so only an explicit zero-check
    // can reject it.
    let mut covered = false;
    for i in 0..3 {
        let (off, len) = section(&bytes, i);
        let (next_off, _) = section(&bytes, i + 1);
        for pad in off + len..next_off {
            covered = true;
            let forged = patch_and_restamp_v2(&bytes, pad, &[0x5A]);
            let err =
                FrozenSynopsis::from_bytes(&forged).expect_err("nonzero alignment padding parsed");
            assert!(format!("{err}").contains("padding"), "unexpected error: {err}");
        }
    }
    assert!(covered, "corpus produced no inter-section padding to test");
}

#[test]
fn v2_random_mutation_corpus_never_panics() {
    let (_, frozen, _) = built();
    let mut rng = StdRng::seed_from_u64(0xD0C2);
    for compressed in [false, true] {
        let bytes = frozen.to_bytes_v2(compressed);
        for _ in 0..250 {
            let mut m = bytes.clone();
            match rng.gen_range(0..4u32) {
                0 => {
                    let start = rng.gen_range(0..m.len());
                    let len = rng.gen_range(1..64usize).min(m.len() - start);
                    for b in &mut m[start..start + len] {
                        *b = rng.gen();
                    }
                }
                1 => {
                    let start = rng.gen_range(0..m.len());
                    let len = rng.gen_range(1..64usize).min(m.len() - start);
                    m.drain(start..start + len);
                }
                2 => {
                    let start = rng.gen_range(0..m.len());
                    let len = rng.gen_range(1..64usize).min(m.len() - start);
                    let window: Vec<u8> = m[start..start + len].to_vec();
                    let at = rng.gen_range(0..m.len());
                    m.splice(at..at, window);
                }
                _ => {
                    let len = rng.gen_range(0..2048usize);
                    m = (0..len).map(|_| rng.gen()).collect();
                }
            }
            if let Ok(parsed) = FrozenSynopsis::from_bytes(&m) {
                assert_eq!(parsed.to_bytes(), m, "accepted a non-canonical encoding");
                assert_eq!(parsed, frozen, "accepted a mutated synopsis as different content");
            }
        }
    }
}

#[test]
fn v2_borrowed_and_owned_answer_bit_identically() {
    let (structure, frozen, docs) = built();
    let v2u: Arc<[u8]> = frozen.to_bytes_v2(false).into();
    let borrowed = FrozenSynopsis::from_bytes_shared(Arc::clone(&v2u)).expect("shared decode");
    assert!(borrowed.is_borrowed(), "uncompressed v2 via Arc must decode borrowed");
    let owned = FrozenSynopsis::from_bytes(&v2u).expect("owned decode");
    assert!(!owned.is_borrowed());
    // Compressed v2 and v1 fall back to owned storage through the same
    // entry point.
    let v2c = FrozenSynopsis::from_bytes_shared(frozen.to_bytes_v2(true).into()).unwrap();
    assert!(!v2c.is_borrowed());
    let v1 = FrozenSynopsis::from_bytes_shared(frozen.to_bytes().into()).unwrap();
    assert!(!v1.is_borrowed());

    for syn in [&borrowed, &owned, &v2c, &v1] {
        assert_eq!(*syn, frozen);
    }
    for doc in &docs {
        for i in 0..doc.len() {
            for j in i + 1..=doc.len() {
                let pat = &doc[i..j];
                let want = structure.query(pat).to_bits();
                for (label, syn) in
                    [("borrowed", &borrowed), ("owned", &owned), ("v2c", &v2c), ("v1", &v1)]
                {
                    assert_eq!(syn.query(pat).to_bits(), want, "{label} disagrees on {pat:?}");
                    assert_eq!(
                        syn.query_naive(pat).to_bits(),
                        want,
                        "{label} naive path disagrees on {pat:?}"
                    );
                }
            }
        }
    }
    // The borrowed synopsis re-encodes canonically from its byte views.
    assert_eq!(borrowed.to_bytes(), v2u.as_ref());
}

#[test]
fn v2_forged_non_finite_fields_error() {
    let (_, frozen, _) = built();
    for compressed in [false, true] {
        let bytes = frozen.to_bytes_v2(compressed);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let le = bad.to_le_bytes();
            for (field, at) in
                [("alpha_counts", ALPHA_COUNTS_OFF), ("alpha_absent", ALPHA_ABSENT_OFF)]
            {
                let forged = patch_and_restamp_v2(&bytes, at, &le);
                let err = FrozenSynopsis::from_bytes(&forged)
                    .expect_err("restamped non-finite alpha parsed");
                assert!(format!("{err}").contains(field), "wrong error for {field}: {err}");
            }
            if !compressed {
                // Counts are raw f64s only in the uncompressed dialect.
                let (counts_off, _) = section(&bytes, 0);
                let forged = patch_and_restamp_v2(&bytes, counts_off, &le);
                let err = FrozenSynopsis::from_bytes(&forged)
                    .expect_err("restamped non-finite count parsed");
                assert!(format!("{err}").contains("count"), "wrong error: {err}");
                // The borrowed path must reject it too — validation runs
                // before any query can touch the bytes.
                let shared: Arc<[u8]> = forged.into();
                assert!(FrozenSynopsis::from_bytes_shared(shared).is_err());
            }
        }
    }
}

#[test]
fn v2_forged_oversized_edge_start_is_an_error_not_a_panic() {
    let (_, frozen, _) = built();
    let bytes = frozen.to_bytes_v2(false);
    // Point node 0's CSR end past every edge array; with all checksums
    // restamped, only the structural range check stands between this and
    // an out-of-bounds index.
    let (edge_start_off, _) = section(&bytes, 1);
    let forged = patch_and_restamp_v2(&bytes, edge_start_off + 4, &u32::MAX.to_le_bytes());
    let err = FrozenSynopsis::from_bytes(&forged).expect_err("oversized CSR offset parsed");
    assert!(format!("{err}").contains("CSR"), "unexpected error: {err}");
}

/// Builds a real structure on tiny random corpora (retrying the
/// legitimate FAIL branch on derived seeds) and asserts all three decode
/// paths agree bit-for-bit.
fn build_small(docs: Vec<Vec<u8>>, seed: u64) -> Option<(PrivateCountStructure, Vec<Vec<u8>>)> {
    let db = Database::from_documents(Alphabet::lowercase(26), docs.clone()).expect("valid docs");
    let idx = CorpusIndex::build(&db);
    let mut rng = StdRng::seed_from_u64(seed);
    let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(1e4), 0.1)
        .with_thresholds(1.0, 1.0);
    build_pure(&idx, &params, &mut rng).ok().map(|s| (s, docs))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn v1_v2_owned_and_borrowed_decode_bit_identically(
        docs in proptest::collection::vec(
            proptest::collection::vec(proptest::sample::select(vec![b'a', b'b', b'c']), 1..12),
            1..10,
        ),
        seed in 0u64..1 << 40,
    ) {
        let (structure, docs) = common::with_retry_seeds(seed, 6, |s| build_small(docs.clone(), s));
        let frozen = structure.freeze();
        let v1 = FrozenSynopsis::from_bytes(&frozen.to_bytes()).expect("v1 decodes");
        let v2_owned = FrozenSynopsis::from_bytes(&frozen.to_bytes_v2(false)).expect("v2 decodes");
        let v2_compressed =
            FrozenSynopsis::from_bytes(&frozen.to_bytes_v2(true)).expect("v2c decodes");
        let shared: Arc<[u8]> = frozen.to_bytes_v2(false).into();
        let v2_borrowed = FrozenSynopsis::from_bytes_shared(shared).expect("borrowed decodes");
        prop_assert!(v2_borrowed.is_borrowed());
        for doc in &docs {
            for i in 0..doc.len() {
                for j in i + 1..=doc.len() {
                    let pat = &doc[i..j];
                    let want = frozen.query(pat).to_bits();
                    prop_assert_eq!(v1.query(pat).to_bits(), want);
                    prop_assert_eq!(v2_owned.query(pat).to_bits(), want);
                    prop_assert_eq!(v2_compressed.query(pat).to_bits(), want);
                    prop_assert_eq!(v2_borrowed.query(pat).to_bits(), want);
                }
            }
        }
        // Absent patterns exercise the early-exit paths of all storages.
        for pat in [b"zz".as_slice(), b"xyzw", b"qqqqqqqq"] {
            let want = frozen.query(pat).to_bits();
            prop_assert_eq!(v1.query(pat).to_bits(), want);
            prop_assert_eq!(v2_owned.query(pat).to_bits(), want);
            prop_assert_eq!(v2_compressed.query(pat).to_bits(), want);
            prop_assert_eq!(v2_borrowed.query(pat).to_bits(), want);
        }
    }
}
