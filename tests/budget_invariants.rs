//! Root-suite coverage for `dpcore::budget`: the composition accounting
//! that every pipeline's privacy argument leans on. These run through the
//! facade (like an application would) and pin down the invariants the
//! paper's Lemma 1 usage needs: split/compose round-trips, ε > 0
//! validation, and exhaustion behavior of the runtime accountant.

use dp_substring_counting::dpcore::budget::BudgetExceeded;
use dp_substring_counting::prelude::*;

#[test]
fn split_fraction_compose_identities() {
    let p = PrivacyParams::approx(2.0, 1e-5);
    // split_even(k) composed k times recovers the whole budget.
    for k in [1usize, 2, 3, 7, 64] {
        let part = p.split_even(k);
        assert!((part.epsilon - 2.0 / k as f64).abs() < 1e-15);
        let mut total = part;
        for _ in 1..k {
            total = total.compose(&part);
        }
        assert!((total.epsilon - p.epsilon).abs() < 1e-9, "k={k}");
        assert!((total.delta - p.delta).abs() < 1e-15, "k={k}");
    }
    // fraction(a).compose(fraction(1−a)) also recovers it.
    let a = p.fraction(0.3).compose(&p.fraction(0.7));
    assert!((a.epsilon - p.epsilon).abs() < 1e-12);
    assert!((a.delta - p.delta).abs() < 1e-18);
    // Pure budgets stay pure under splitting.
    assert!(PrivacyParams::pure(1.0).split_even(5).is_pure());
    assert!(!p.split_even(5).is_pure());
}

#[test]
fn compose_adds_both_coordinates() {
    let a = PrivacyParams::approx(0.5, 1e-7);
    let b = PrivacyParams::pure(0.25);
    let c = a.compose(&b);
    assert!((c.epsilon - 0.75).abs() < 1e-15);
    assert!((c.delta - 1e-7).abs() < 1e-21);
}

#[test]
fn non_positive_epsilon_is_rejected() {
    for bad in [0.0, -1.0, -1e-12] {
        assert!(
            std::panic::catch_unwind(|| PrivacyParams::pure(bad)).is_err(),
            "pure({bad}) must be rejected"
        );
        assert!(
            std::panic::catch_unwind(|| PrivacyParams::approx(bad, 1e-6)).is_err(),
            "approx({bad}, δ) must be rejected"
        );
    }
    // δ outside [0, 1) is rejected too.
    assert!(std::panic::catch_unwind(|| PrivacyParams::approx(1.0, 1.0)).is_err());
    assert!(std::panic::catch_unwind(|| PrivacyParams::approx(1.0, -1e-9)).is_err());
    // Degenerate splits/fractions.
    assert!(std::panic::catch_unwind(|| PrivacyParams::pure(1.0).split_even(0)).is_err());
    assert!(std::panic::catch_unwind(|| PrivacyParams::pure(1.0).fraction(0.0)).is_err());
    assert!(std::panic::catch_unwind(|| PrivacyParams::pure(1.0).fraction(1.5)).is_err());
}

#[test]
fn accountant_exhaustion_and_error_contents() {
    let budget = PrivacyParams::approx(1.0, 1e-6);
    let mut acc = BudgetAccountant::new(budget);
    assert_eq!(acc.budget(), budget);
    assert_eq!(acc.spent().epsilon, 0.0);

    // Spend in thirds: three fit, the fourth overdraws.
    let third = budget.split_even(3);
    for i in 0..3 {
        assert!(acc.charge(third).is_ok(), "charge {i}");
    }
    let err: BudgetExceeded = acc.charge(third).expect_err("fourth third overdraws");
    assert!(err.would_be_epsilon > budget.epsilon);
    assert_eq!(err.budget, budget);
    // The failed charge must not have been recorded.
    assert!((acc.spent().epsilon - 1.0).abs() < 1e-9);
    assert!((acc.spent().delta - 1e-6).abs() < 1e-18);
    // And the accountant still rejects further spending (no reset).
    assert!(acc.charge(PrivacyParams::approx(0.1, 1e-8)).is_err());
    // The error is a real std error with a readable message.
    let msg = format!("{err}");
    assert!(msg.contains("budget exceeded"), "message: {msg}");
}

#[test]
fn accountant_tolerates_float_dust_but_not_real_overdraft() {
    // 10 × ε/10 must fit despite accumulated rounding…
    let mut acc = BudgetAccountant::new(PrivacyParams::pure(1.0));
    let tenth = PrivacyParams::pure(1.0).split_even(10);
    for i in 0..10 {
        assert!(acc.charge(tenth).is_ok(), "charge {i} of 10");
    }
    // …but any macroscopic extra is rejected.
    assert!(acc.charge(PrivacyParams::pure(1e-6)).is_err());
}

#[test]
fn delta_overdraft_on_pure_budget_is_rejected() {
    // A pure-DP budget admits no δ at all: the first approx charge fails
    // and δ-spend stays zero.
    let mut acc = BudgetAccountant::new(PrivacyParams::pure(1.0));
    assert!(acc.charge(PrivacyParams::approx(0.1, 1e-12)).is_err());
    assert_eq!(acc.spent().delta, 0.0);
    assert!(acc.charge(PrivacyParams::pure(0.1)).is_ok());
}
