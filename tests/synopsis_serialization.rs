//! Robustness of the frozen synopsis binary codec on a *real* DP-built
//! structure: exact round-trips, and `Err` (never a panic) on a corpus of
//! mutated byte strings — truncations, version/magic damage, single-bit
//! flips, spliced garbage, and unstructured noise.

use dp_substring_counting::prelude::*;
use dp_substring_counting::workloads::markov_corpus;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A genuinely constructed (Theorem 1) synopsis plus its corpus.
fn built() -> (PrivateCountStructure, FrozenSynopsis, Vec<Vec<u8>>) {
    let mut rng = StdRng::seed_from_u64(11);
    let db = markov_corpus(60, 16, 4, 0.6, &mut rng);
    let idx = CorpusIndex::build(&db);
    let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(1e4), 0.1)
        .with_thresholds(1.5, 1.5);
    let s = build_pure(&idx, &params, &mut rng).expect("construction succeeds");
    let f = s.freeze();
    (s, f, db.documents().to_vec())
}

#[test]
fn binary_roundtrip_preserves_queries_exactly() {
    let (structure, frozen, docs) = built();
    let bytes = frozen.to_bytes();
    let back = FrozenSynopsis::from_bytes(&bytes).expect("round-trip parses");
    assert_eq!(back, frozen);
    for doc in &docs {
        for i in 0..doc.len() {
            for j in i + 1..=doc.len() {
                let pat = &doc[i..j];
                assert_eq!(back.query(pat).to_bits(), structure.query(pat).to_bits());
            }
        }
    }
    // Serializing the decoded synopsis reproduces the identical bytes.
    assert_eq!(back.to_bytes(), bytes);
}

#[test]
fn truncations_and_extensions_error() {
    let (_, frozen, _) = built();
    let bytes = frozen.to_bytes();
    // Every strict prefix fails — stride keeps the sweep fast, the first
    // 64 offsets (header territory) are covered exhaustively.
    for len in (0..bytes.len()).filter(|&l| l < 64 || l % 37 == 0) {
        assert!(FrozenSynopsis::from_bytes(&bytes[..len]).is_err(), "prefix {len} parsed");
    }
    // Appending bytes fails too (trailing garbage).
    for extra in [1usize, 8, 1024] {
        let mut e = bytes.clone();
        e.extend(std::iter::repeat_n(0xAB, extra));
        assert!(FrozenSynopsis::from_bytes(&e).is_err(), "extension {extra} parsed");
    }
}

#[test]
fn version_and_magic_damage_errors() {
    let (_, frozen, _) = built();
    let bytes = frozen.to_bytes();
    for pos in 0..6 {
        for val in [0u8, 2, 7, 0xFF] {
            let mut m = bytes.clone();
            if m[pos] == val {
                continue;
            }
            m[pos] = val;
            assert!(FrozenSynopsis::from_bytes(&m).is_err(), "byte {pos} := {val} parsed");
        }
    }
}

#[test]
fn bit_flip_corpus_errors() {
    let (_, frozen, _) = built();
    let bytes = frozen.to_bytes();
    // Strided single-bit flips across the whole buffer (header, counts,
    // CSR arrays, checksum); the stride is coprime to 8 so every bit index
    // is exercised.
    for pos in (0..bytes.len()).step_by(13) {
        for bit in 0..8 {
            let mut m = bytes.clone();
            m[pos] ^= 1 << bit;
            assert!(
                FrozenSynopsis::from_bytes(&m).is_err(),
                "bit {bit} of byte {pos}/{} flipped silently",
                bytes.len()
            );
        }
    }
}

#[test]
fn random_mutation_corpus_never_panics() {
    let (_, frozen, _) = built();
    let bytes = frozen.to_bytes();
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for _ in 0..500 {
        let mut m = bytes.clone();
        match rng.gen_range(0..4u32) {
            // Overwrite a random window with noise.
            0 => {
                let start = rng.gen_range(0..m.len());
                let len = rng.gen_range(1..64usize).min(m.len() - start);
                for b in &mut m[start..start + len] {
                    *b = rng.gen();
                }
            }
            // Delete a random window.
            1 => {
                let start = rng.gen_range(0..m.len());
                let len = rng.gen_range(1..64usize).min(m.len() - start);
                m.drain(start..start + len);
            }
            // Duplicate a random window in place.
            2 => {
                let start = rng.gen_range(0..m.len());
                let len = rng.gen_range(1..64usize).min(m.len() - start);
                let window: Vec<u8> = m[start..start + len].to_vec();
                let at = rng.gen_range(0..m.len());
                m.splice(at..at, window);
            }
            // Pure noise of arbitrary length (structure destroyed).
            _ => {
                let len = rng.gen_range(0..2048usize);
                m = (0..len).map(|_| rng.gen()).collect();
            }
        }
        // Decoding must return cleanly — Err for anything damaged, Ok only
        // if the mutation reproduced a valid encoding (then it must
        // re-serialize consistently).
        if let Ok(parsed) = FrozenSynopsis::from_bytes(&m) {
            assert_eq!(parsed.to_bytes(), m, "accepted a non-canonical encoding");
            assert_eq!(parsed, frozen, "accepted a mutated synopsis as different content");
        }
    }
}

#[test]
fn empty_and_tiny_inputs_error() {
    assert!(FrozenSynopsis::from_bytes(&[]).is_err());
    for len in 1..16 {
        assert!(FrozenSynopsis::from_bytes(&vec![0u8; len]).is_err());
        assert!(FrozenSynopsis::from_bytes(&vec![0xFFu8; len]).is_err());
    }
    // A bare valid header with nothing after it is still truncated.
    let (_, frozen, _) = built();
    let bytes = frozen.to_bytes();
    assert!(FrozenSynopsis::from_bytes(&bytes[..16.min(bytes.len())]).is_err());
}
