//! Shared helpers for the root integration tests.
//!
//! The DP constructions have a legitimate FAIL branch (candidate
//! overflow), so "build a structure" is inherently a randomized attempt.
//! Tests that skipped failed attempts could silently go vacuous — the PR 2
//! differential harness only built reliably at ε ≥ 1e3 for exactly this
//! reason. [`with_retry_seeds`] makes the contract explicit: try a handful
//! of derived seeds, require at least one success, and *panic* (rather
//! than skip) when every seed fails, so a harness can never pass without
//! having exercised its subject.

// Each integration-test binary compiles this module separately and uses a
// subset of it.
#![allow(dead_code)]

/// Tries `f` on up to `attempts` seeds derived from `base_seed`, returning
/// the first `Some`. Panics if every attempt returns `None` — a test using
/// this helper can be retried but never vacuous.
pub fn with_retry_seeds<T>(
    base_seed: u64,
    attempts: usize,
    mut f: impl FnMut(u64) -> Option<T>,
) -> T {
    assert!(attempts >= 1);
    for i in 0..attempts {
        // Weyl-sequence step keeps derived seeds well spread.
        let seed = base_seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Some(v) = f(seed) {
            return v;
        }
    }
    panic!(
        "no success in {attempts} seeded attempts from base seed {base_seed} — \
         the harness would be vacuous"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_first_success() {
        let mut calls = 0;
        let v = with_retry_seeds(7, 5, |seed| {
            calls += 1;
            if calls == 3 {
                Some(seed)
            } else {
                None
            }
        });
        assert_eq!(calls, 3);
        // The third derived seed, deterministically.
        assert_eq!(v, 7u64.wrapping_add(2u64.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    }

    #[test]
    #[should_panic(expected = "vacuous")]
    fn panics_when_all_seeds_fail() {
        let _: () = with_retry_seeds(7, 3, |_| None);
    }
}
