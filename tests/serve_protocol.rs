//! Robustness of the serving wire protocol on *real* payloads: exact
//! canonical round-trips for every request/response kind, and `Err`
//! (never a panic) on a corpus of mutated frames — truncations,
//! magic/version damage, strided bit flips, spliced garbage, and
//! unstructured noise — mirroring `tests/synopsis_serialization.rs` for
//! the snapshot codec.

use dp_substring_counting::prelude::*;
use dp_substring_counting::serve::wire::{
    decode_request, decode_response, encode_request, encode_response, frame_len,
};
use dp_substring_counting::serve::{
    CacheStats, MetricsReport, MetricsShard, OpCounts, OpLatencies, OpLatency, Request, Response,
    ServerStats, ShardStats, NO_SHARD,
};
use dp_substring_counting::workloads::markov_corpus;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A genuinely constructed (Theorem 1) snapshot to carry in
/// `LoadSnapshot`, plus patterns from its corpus.
fn built_payload() -> (Vec<u8>, Vec<Vec<u8>>) {
    let mut rng = StdRng::seed_from_u64(23);
    let db = markov_corpus(60, 16, 4, 0.6, &mut rng);
    let idx = CorpusIndex::build(&db);
    let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(1e4), 0.1)
        .with_thresholds(1.5, 1.5);
    let s = build_pure(&idx, &params, &mut rng).expect("construction succeeds");
    let bytes = s.freeze().to_bytes();
    let patterns = db.documents().iter().map(|d| d[..d.len().min(6)].to_vec()).collect();
    (bytes, patterns)
}

fn real_requests() -> Vec<Request> {
    let (snapshot, patterns) = built_payload();
    vec![
        Request::Query { shard: 0, pattern: patterns[0].clone() },
        Request::QueryBatch { shard: 1, patterns: patterns.clone() },
        Request::Contains { shard: 2, pattern: patterns[1].clone() },
        Request::Stats,
        Request::LoadSnapshot { shard: 3, snapshot: snapshot.into() },
        Request::Rollback { shard: 3, epoch: 0xDEAD_BEEF_u64 },
        Request::Metrics,
        Request::Trace { max: 512 },
        Request::MetricsText,
        Request::Shutdown,
    ]
}

fn real_responses() -> Vec<Response> {
    vec![
        Response::Query { value: 17.25 },
        Response::QueryBatch { values: (0..64).map(|i| i as f64 * 0.5 - 3.0).collect() },
        Response::Contains { present: true },
        Response::Stats(ServerStats {
            cache: CacheStats { hits: 1, misses: 2, entries: 3, capacity: 4096 },
            shards: vec![
                ShardStats {
                    shard_id: 0,
                    epoch: 1,
                    node_count: 100,
                    serialized_len: 2048,
                    n_docs: 60,
                    max_len: 16,
                    epsilon: 1e4,
                    delta: 0.0,
                    alpha: 2.5,
                    alpha_counts: 2.5,
                    alpha_absent: 1.5,
                },
                ShardStats {
                    shard_id: 9,
                    epoch: 7,
                    node_count: 1,
                    serialized_len: 85,
                    n_docs: 1,
                    max_len: 1,
                    epsilon: 0.5,
                    delta: 1e-9,
                    alpha: 0.0,
                    alpha_counts: 0.0,
                    alpha_absent: 0.0,
                },
            ],
        }),
        Response::LoadSnapshot { epoch: 8, node_count: 12345 },
        Response::Rollback { epoch: 9 },
        Response::Metrics(Box::new(MetricsReport {
            uptime_ns: 98_765_432,
            conns_accepted: 33,
            conns_open: 4,
            ops: OpCounts {
                query: 7,
                query_batch: 5,
                contains: 1,
                stats: 1,
                load_snapshot: 2,
                rollback: 1,
                metrics: 1,
                shutdown: 0,
                trace: 3,
                metrics_text: 1,
                errors: 2,
            },
            patterns_total: 199,
            overloaded_total: 1,
            idle_reaped_total: 0,
            deadline_evicted_total: 1,
            recoveries_total: 1,
            rollbacks_total: 1,
            qps: 1234.5,
            qps_window: 987.25,
            latency_p50_ns: 768.0,
            latency_p99_ns: 6144.0,
            op_latency: OpLatencies {
                query: OpLatency { p50_ns: 384.0, p99_ns: 768.0 },
                query_batch: OpLatency { p50_ns: 3072.0, p99_ns: 12288.0 },
                contains: OpLatency { p50_ns: 192.0, p99_ns: 384.0 },
                stats: OpLatency::default(),
                load_snapshot: OpLatency { p50_ns: 393_216.0, p99_ns: 786_432.0 },
                rollback: OpLatency { p50_ns: 98_304.0, p99_ns: 98_304.0 },
                metrics: OpLatency { p50_ns: 1536.0, p99_ns: 1536.0 },
                shutdown: OpLatency::default(),
                trace: OpLatency { p50_ns: 1536.0, p99_ns: 3072.0 },
                metrics_text: OpLatency { p50_ns: 3072.0, p99_ns: 3072.0 },
            },
            loop_wait_ns: 60_000_000,
            loop_busy_ns: 38_765_432,
            loop_utilization: 38_765_432.0 / 98_765_432.0,
            accept_to_first_p50_ns: 49_152.0,
            accept_to_first_p99_ns: 196_608.0,
            parks_total: 2,
            unparks_total: 2,
            slow_ops_total: 3,
            slow_op_threshold_ns: 500_000,
            trace_events_total: 87,
            trace_overwritten_total: 0,
            cache: CacheStats { hits: 120, misses: 79, entries: 79, capacity: 8192 },
            cache_hit_rate: 120.0 / 199.0,
            shards: vec![MetricsShard {
                shard_id: 3,
                epoch: 11,
                serialized_len: 4096,
                ops: 13,
                latency_p50_ns: 768.0,
                latency_p99_ns: 3072.0,
            }],
        })),
        Response::Trace {
            events: vec![
                TraceEvent {
                    seq: 0,
                    ts_ns: 1_000,
                    kind: TraceKind::ConnAccepted,
                    conn: 1,
                    shard: NO_SHARD,
                    epoch: 0,
                    fingerprint: 0,
                    len: 0,
                    dur_ns: 0,
                    detail: 0,
                },
                TraceEvent {
                    seq: 1,
                    ts_ns: 2_500,
                    kind: TraceKind::FrameAnswered,
                    conn: 1,
                    shard: 3,
                    epoch: 11,
                    fingerprint: 0xDEAD_BEEF_CAFE_F00D,
                    len: 6,
                    dur_ns: 840,
                    detail: 0,
                },
                TraceEvent {
                    seq: 2,
                    ts_ns: 9_000,
                    kind: TraceKind::SlowOp,
                    conn: 1,
                    shard: 3,
                    epoch: 11,
                    fingerprint: 0xDEAD_BEEF_CAFE_F00D,
                    len: 6,
                    dur_ns: 700_123,
                    detail: 500_000,
                },
            ],
        },
        Response::MetricsText { text: "dpsc_patterns_total 199\ndpsc_slow_ops_total 3\n".into() },
        Response::Overloaded,
        Response::Shutdown,
        Response::Error { message: "snapshot rejected: checksum mismatch".to_string() },
    ]
}

#[test]
fn real_frames_round_trip_canonically() {
    for req in real_requests() {
        let framed = encode_request(&req);
        let total = frame_len(&framed).unwrap().expect("complete");
        assert_eq!(total, framed.len(), "frame length covers the whole encoding");
        let back = decode_request(&framed[4..]).expect("request decodes");
        assert_eq!(back, req);
        assert_eq!(encode_request(&back), framed, "canonical re-encode");
    }
    for resp in real_responses() {
        let framed = encode_response(&resp);
        let back = decode_response(&framed[4..]).expect("response decodes");
        assert_eq!(back, resp);
        assert_eq!(encode_response(&back), framed, "canonical re-encode");
    }
}

#[test]
fn truncations_error_and_never_panic() {
    for req in real_requests() {
        let framed = encode_request(&req);
        let body = &framed[4..];
        // Stride keeps the big LoadSnapshot sweep fast; the first 64
        // offsets (envelope territory) are covered exhaustively.
        for len in (0..body.len()).filter(|&l| l < 64 || l % 37 == 0) {
            assert!(decode_request(&body[..len]).is_err(), "prefix {len} parsed");
        }
    }
}

#[test]
fn magic_version_and_direction_damage_error() {
    let framed = encode_request(&Request::Stats);
    let body = &framed[4..];
    let mut wrong_magic = body.to_vec();
    wrong_magic[0] = b'X';
    assert!(decode_request(&wrong_magic).unwrap_err().to_string().contains("magic"));
    let mut wrong_version = body.to_vec();
    wrong_version[4] = 99;
    assert!(decode_request(&wrong_version).unwrap_err().to_string().contains("version"));
    // A response body is not a request (and vice versa).
    let resp = encode_response(&Response::Shutdown);
    assert!(decode_request(&resp[4..]).unwrap_err().to_string().contains("magic"));
    assert!(decode_response(body).unwrap_err().to_string().contains("magic"));
}

#[test]
fn strided_bit_flips_are_rejected() {
    // The checksum covers the whole body, so any single-bit flip anywhere
    // must fail. Sweep exhaustively on a small frame, strided on a big one.
    let small = encode_request(&Request::Query { shard: 3, pattern: b"acgt".to_vec() });
    for pos in 4..small.len() {
        for bit in 0..8 {
            let mut corrupt = small[4..].to_vec();
            corrupt[pos - 4] ^= 1 << bit;
            assert!(decode_request(&corrupt).is_err(), "byte {pos} bit {bit} slipped through");
        }
    }
    let (snapshot, _) = built_payload();
    let big = encode_request(&Request::LoadSnapshot { shard: 0, snapshot: snapshot.into() });
    for pos in (4..big.len()).step_by(997) {
        let mut corrupt = big[4..].to_vec();
        corrupt[pos - 4] ^= 0x10;
        assert!(decode_request(&corrupt).is_err(), "byte {pos} flip slipped through");
    }
}

#[test]
fn random_mutations_never_panic_and_ok_is_canonical() {
    let mut rng = StdRng::seed_from_u64(4242);
    let frames: Vec<Vec<u8>> = real_requests().iter().map(encode_request).collect();
    for _ in 0..400 {
        let base = &frames[rng.gen_range(0..frames.len())];
        let mut m = base[4..].to_vec();
        match rng.gen_range(0..4u8) {
            0 => {
                // Splice random garbage at a random offset.
                let at = rng.gen_range(0..=m.len());
                let n = rng.gen_range(1..16usize);
                let garbage: Vec<u8> = (0..n).map(|_| rng.gen_range(0..=255u8)).collect();
                m.splice(at..at, garbage);
            }
            1 => {
                // Delete a random slice.
                if !m.is_empty() {
                    let at = rng.gen_range(0..m.len());
                    let n = rng.gen_range(1..=(m.len() - at).min(16));
                    m.drain(at..at + n);
                }
            }
            2 => {
                // Overwrite a random byte.
                if !m.is_empty() {
                    let at = rng.gen_range(0..m.len());
                    m[at] = rng.gen_range(0..=255u8);
                }
            }
            _ => {
                // Unstructured noise of random length.
                let n = rng.gen_range(0..256usize);
                m = (0..n).map(|_| rng.gen_range(0..=255u8)).collect();
            }
        }
        // Must not panic; if it parses, it must re-encode canonically.
        if let Ok(req) = decode_request(&m) {
            let mut reframed = encode_request(&req);
            assert_eq!(reframed.split_off(4), m, "accepted mutation is non-canonical");
        }
    }
}

#[test]
fn shared_decode_error_type_spans_both_codecs() {
    // The satellite contract: one typed error for snapshot + wire decode,
    // with Display carrying the old stringly messages.
    let snapshot_err: DecodeError = FrozenSynopsis::from_bytes(b"nope").unwrap_err();
    let wire_err: DecodeError = decode_request(b"nope").unwrap_err();
    for e in [snapshot_err, wire_err] {
        // The `.map_err(|e| e.to_string())` pattern legacy callers keep.
        let legacy: Result<(), String> = Err(e).map_err(|e| e.to_string());
        assert!(!legacy.unwrap_err().is_empty());
    }
}
