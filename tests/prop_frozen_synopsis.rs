//! Differential property test for the frozen serving layer: on random
//! corpora and privacy parameters, [`FrozenSynopsis`] must agree
//! *bit-for-bit* with the pointer-trie [`PrivateCountStructure`] — on every
//! substring of every document (present or pruned), on random absent
//! patterns, and through the binary codec — for both the Laplace
//! (Theorem 1) and Gaussian (Theorem 2) constructions.

mod common;

use dp_substring_counting::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn small_docs() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::sample::select(vec![b'a', b'b', b'c']), 1..14),
        1..12,
    )
}

/// Builds with a large ε (relative to the tiny corpora) and low thresholds
/// so construction usually succeeds and produces a non-trivial trie; the
/// FAIL branch (candidate overflow) is a legitimate mechanism output and
/// simply skips the case.
fn build(
    docs: Vec<Vec<u8>>,
    epsilon: f64,
    gaussian: bool,
    seed: u64,
) -> Option<(PrivateCountStructure, Vec<Vec<u8>>)> {
    let db = Database::from_documents(Alphabet::lowercase(26), docs.clone()).expect("valid docs");
    let idx = CorpusIndex::build(&db);
    let mut rng = StdRng::seed_from_u64(seed);
    let (privacy, mode) = if gaussian {
        (PrivacyParams::approx(epsilon, 1e-6), CountMode::Document)
    } else {
        (PrivacyParams::pure(epsilon), CountMode::Substring)
    };
    let params = BuildParams::new(mode, privacy, 0.1).with_thresholds(1.0, 1.0);
    let built = if gaussian {
        build_approx(&idx, &params, &mut rng)
    } else {
        build_pure(&idx, &params, &mut rng)
    };
    built.ok().map(|s| (s, docs))
}

/// Asserts bit-for-bit agreement between the trie and the frozen synopsis
/// (and its serialized round-trip) on every substring of every document
/// plus deterministic absent patterns.
fn check_agreement(structure: &PrivateCountStructure, docs: &[Vec<u8>], seed: u64) {
    let frozen = structure.freeze();
    let decoded = FrozenSynopsis::from_bytes(&frozen.to_bytes()).expect("codec round-trips");
    assert_eq!(frozen, decoded);
    assert_eq!(frozen.node_count(), structure.node_count());
    assert_eq!(frozen.mode(), structure.mode());
    assert_eq!(frozen.privacy(), structure.privacy());
    assert_eq!(frozen.alpha(), structure.alpha());
    assert_eq!(frozen.db_params(), structure.db_params());

    let check_pattern = |pat: &[u8]| {
        let want = structure.query(pat);
        for (label, got) in [("frozen", frozen.query(pat)), ("decoded", decoded.query(pat))] {
            assert_eq!(
                want.to_bits(),
                got.to_bits(),
                "{label} disagrees on {pat:?}: {want} vs {got}"
            );
        }
        assert_eq!(structure.contains(pat), frozen.contains(pat), "contains({pat:?})");
    };

    // Every substring of every document, the empty pattern included.
    check_pattern(b"");
    for doc in docs {
        for i in 0..doc.len() {
            for j in i + 1..=doc.len() {
                check_pattern(&doc[i..j]);
            }
        }
    }
    // Random absent patterns: symbols outside the corpus alphabet subset,
    // plus overlong patterns.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
    for _ in 0..50 {
        let len = rng.gen_range(1..20usize);
        let pat: Vec<u8> = (0..len).map(|_| rng.gen_range(b'd'..=b'z')).collect();
        check_pattern(&pat);
    }
    // Batch paths agree with the single-query path.
    let all: Vec<Vec<u8>> = docs
        .iter()
        .flat_map(|d| (0..d.len()).map(|i| d[i..].to_vec()).collect::<Vec<_>>())
        .collect();
    let refs: Vec<&[u8]> = all.iter().map(|p| p.as_slice()).collect();
    let single: Vec<u64> = refs.iter().map(|p| frozen.query(p).to_bits()).collect();
    let batch: Vec<u64> = frozen.query_batch(&refs).iter().map(|v| v.to_bits()).collect();
    let par: Vec<u64> = frozen.query_batch_parallel(&refs, 4).iter().map(|v| v.to_bits()).collect();
    assert_eq!(single, batch);
    assert_eq!(single, par);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // ε ≥ 1e3 keeps the (still real, still per-node) noise below the demo
    // thresholds so construction usually succeeds on these tiny corpora;
    // `with_retry_seeds` retries the FAIL branch (a legitimate mechanism
    // output) on derived seeds and panics if *every* attempt fails, so no
    // case can silently skip — the harness is structurally non-vacuous.

    #[test]
    fn frozen_matches_trie_laplace(docs in small_docs(), eps_scale in 0u32..4, seed in 0u64..1 << 40) {
        let epsilon = [1e3, 1e4, 1e5, 1e6][eps_scale as usize];
        let (structure, docs) =
            common::with_retry_seeds(seed, 6, |s| build(docs.clone(), epsilon, false, s));
        check_agreement(&structure, &docs, seed);
    }

    #[test]
    fn frozen_matches_trie_gaussian(docs in small_docs(), eps_scale in 0u32..4, seed in 0u64..1 << 40) {
        let epsilon = [1e3, 1e4, 1e5, 1e6][eps_scale as usize];
        let (structure, docs) =
            common::with_retry_seeds(seed, 6, |s| build(docs.clone(), epsilon, true, s));
        check_agreement(&structure, &docs, seed);
    }
}

/// Deterministic anchor: on a fixed corpus, construction must succeed
/// (within the retry budget) in both noise modes and the frozen synopsis
/// must agree everywhere — a belt-and-suspenders floor under the property
/// tests above.
#[test]
fn fixed_corpus_agrees_in_both_modes() {
    let docs: Vec<Vec<u8>> = ["abcabc", "abca", "cabb", "aab", "bcbc", "ccca"]
        .iter()
        .map(|s| s.as_bytes().to_vec())
        .collect();
    for gaussian in [false, true] {
        let (structure, docs) =
            common::with_retry_seeds(7, 4, |s| build(docs.clone(), 1e4, gaussian, s));
        assert!(structure.node_count() > 1, "non-trivial trie (gaussian={gaussian})");
        check_agreement(&structure, &docs, 7);
    }
}
