//! Workspace smoke test: the facade crate's documented entry points work
//! end to end on the paper's Example 1 database, for both the pure-DP
//! (Theorem 1) and approx-DP (Theorem 2) constructions, and construction
//! honors the FAIL-branch/Ok contract from the crate docs: it returns
//! `Ok(structure)` or `Err(BuildError::CandidateOverflow)` — never panics,
//! and a returned structure always answers queries with finite numbers.

use dp_substring_counting::prelude::*;
use dp_substring_counting::private_count::BuildError;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Exact substring count over the paper-example documents, for reference.
fn exact_count(db: &Database, pattern: &[u8]) -> f64 {
    db.documents()
        .iter()
        .map(|d| d.windows(pattern.len()).filter(|w| *w == pattern).count())
        .sum::<usize>() as f64
}

#[test]
fn pure_dp_construction_end_to_end() {
    let db = Database::paper_example();
    let idx = CorpusIndex::build(&db);
    let mut rng = StdRng::seed_from_u64(0xD5C);

    // Noiseless regime (enormous ε, τ below every nonzero count): the
    // FAIL branch has probability ≈ 0 here, so construction must succeed
    // and reproduce exact counts — the correctness smoke the pipelines'
    // own docs promise.
    let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(1e12), 0.1)
        .with_thresholds(0.5, 0.5);
    let s = build_pure(&idx, &params, &mut rng).expect("noiseless pure build succeeds");
    for pat in [&b"a"[..], b"b", b"ab", b"ba", b"aba"] {
        let got = s.query(pat);
        assert!(got.is_finite());
        assert!(
            (got - exact_count(&db, pat)).abs() < 1e-3,
            "{pat:?}: {got} vs {}",
            exact_count(&db, pat)
        );
    }
    // Absent patterns answer exactly 0 (structure stores no node for them).
    assert_eq!(s.query(b"zzz"), 0.0);
    let (n, ell) = s.db_params();
    assert_eq!(n, db.documents().len());
    assert_eq!(ell, db.max_len());
}

#[test]
fn approx_dp_construction_end_to_end() {
    let db = Database::paper_example();
    let idx = CorpusIndex::build(&db);
    let mut rng = StdRng::seed_from_u64(0xD5D);

    let params = BuildParams::new(CountMode::Document, PrivacyParams::approx(1e12, 1e-9), 0.1)
        .with_thresholds(0.5, 0.5);
    let s = build_approx(&idx, &params, &mut rng).expect("noiseless approx build succeeds");
    // Document-count mode agrees with the index oracle in the noiseless
    // regime.
    for pat in [&b"a"[..], b"ab", b"ba"] {
        let got = s.query(pat);
        assert!(got.is_finite());
        assert!(
            (got - idx.document_count(pat) as f64).abs() < 1e-3,
            "{pat:?}: {got} vs {}",
            idx.document_count(pat)
        );
    }
}

#[test]
fn fail_branch_or_ok_contract_under_real_noise() {
    // At realistic privacy budgets on a toy database the noise floor
    // dominates every count: the crate docs declare BOTH outcomes
    // legitimate. Whatever happens, it must be the *declared* contract:
    // no panic, Err is CandidateOverflow, Ok answers finite queries.
    let db = Database::paper_example();
    let idx = CorpusIndex::build(&db);
    for seed in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(1.0), 0.1)
            .with_thresholds(1.5, 1.5);
        match build_pure(&idx, &params, &mut rng) {
            Ok(s) => {
                assert!(s.query(b"ab").is_finite());
                assert!(s.node_count() >= 1);
            }
            Err(BuildError::CandidateOverflow(e)) => {
                // The FAIL branch carries a diagnosable message.
                assert!(!e.to_string().is_empty());
            }
        }
    }
}
