//! Thread-count independence of the parallel build path.
//!
//! The construction parallelizes Step 1's pair scans (fixed-size chunks,
//! per-chunk derived RNG streams) and Steps 3–5's heavy-path noise
//! (per-path derived streams). The invariant those derivations buy is that
//! `threads` is *purely* a scheduling knob: for a fixed seed the released
//! structure — candidates kept, noise added, nodes pruned — is bit-for-bit
//! identical at every thread count, for both mechanisms. This test pins
//! that invariant through the strictest equality available: the canonical
//! `FrozenSynopsis::to_bytes()` encoding (checksummed CSR layout), plus
//! seed reproducibility at a fixed thread count.
//!
//! Builds have a legitimate FAIL branch, so each attempt goes through
//! `with_retry_seeds`: a seed where any thread count FAILs is skipped
//! (FAIL must then be unanimous — also asserted), and at least one seed
//! must yield a successful comparison or the harness panics.

mod common;

use dp_substring_counting::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A corpus with planted structure so successful builds have nontrivial
/// tries (multi-level candidates, many heavy paths).
fn test_db() -> Database {
    let mut rng = StdRng::seed_from_u64(0x5EED_D0C5);
    dpsc_workloads::markov_corpus(96, 24, 4, 0.75, &mut rng)
}

fn build_bytes(idx: &CorpusIndex, gaussian: bool, threads: usize, seed: u64) -> Option<Vec<u8>> {
    let n = idx.n_docs() as f64;
    let (mode, privacy) = if gaussian {
        (CountMode::Document, PrivacyParams::approx(8.0, 1e-6))
    } else {
        (CountMode::Substring, PrivacyParams::pure(40.0))
    };
    let params = BuildParams::new(mode, privacy, 0.2)
        .with_thresholds(0.5 * n, f64::NEG_INFINITY)
        .with_threads(threads);
    let mut rng = StdRng::seed_from_u64(seed);
    let built = if gaussian {
        build_approx(idx, &params, &mut rng)
    } else {
        build_pure(idx, &params, &mut rng)
    };
    built.ok().map(|s| FrozenSynopsis::freeze(&s).to_bytes())
}

fn assert_thread_count_invariant(gaussian: bool, base_seed: u64) {
    let db = test_db();
    let idx = CorpusIndex::build(&db);
    let label = if gaussian { "gaussian" } else { "laplace" };
    common::with_retry_seeds(base_seed, 12, |seed| {
        let outcomes: Vec<Option<Vec<u8>>> =
            [1usize, 4, 8].iter().map(|&t| build_bytes(&idx, gaussian, t, seed)).collect();
        // The FAIL decision itself must be thread-count independent.
        let successes = outcomes.iter().filter(|o| o.is_some()).count();
        assert!(
            successes == 0 || successes == outcomes.len(),
            "{label}: FAIL decision varied with thread count at seed {seed}"
        );
        if successes == 0 {
            return None; // legitimate FAIL branch — retry with the next seed
        }
        let reference = outcomes[0].as_ref().expect("successes == len");
        assert!(!reference.is_empty() && reference.len() > 64, "{label}: degenerate synopsis");
        for (i, other) in outcomes.iter().enumerate().skip(1) {
            assert_eq!(
                reference,
                other.as_ref().expect("successes == len"),
                "{label}: threads=1 vs threads={} bytes differ at seed {seed}",
                [1, 4, 8][i]
            );
        }
        // Same seed, same thread count ⇒ reproducible bytes.
        let again = build_bytes(&idx, gaussian, 8, seed).expect("deterministic FAIL decision");
        assert_eq!(reference, &again, "{label}: rebuild at seed {seed} not reproducible");
        Some(())
    });
}

#[test]
fn laplace_build_is_thread_count_invariant() {
    assert_thread_count_invariant(false, 0xB11D_0001);
}

#[test]
fn gaussian_build_is_thread_count_invariant() {
    assert_thread_count_invariant(true, 0xB11D_0002);
}

/// Different seeds must *not* produce identical bytes (guards against the
/// derivation collapsing to a constant stream, which would render the
/// invariant above vacuous).
#[test]
fn different_seeds_differ() {
    let db = test_db();
    let idx = CorpusIndex::build(&db);
    let a = common::with_retry_seeds(0xB11D_0003, 12, |seed| build_bytes(&idx, false, 4, seed));
    let b = common::with_retry_seeds(0xB11D_1003, 12, |seed| build_bytes(&idx, false, 4, seed));
    assert_ne!(a, b, "independent seeds produced identical synopses");
}
