//! End-to-end integration tests for Theorems 1–4 on realistic corpora:
//! error-within-α, structure-size bounds, absent-string guarantees, and
//! the Definition 2 mining contract.

use dp_substring_counting::prelude::*;
use dp_substring_counting::private_count::{evaluate_mining, frequent_substrings};
use dp_substring_counting::strkit::trie::Trie;
use dp_substring_counting::workloads::{dna_corpus, markov_corpus};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn markov_index(seed: u64) -> (Database, CorpusIndex) {
    let mut rng = StdRng::seed_from_u64(seed);
    let db = markov_corpus(400, 24, 6, 0.7, &mut rng);
    let idx = CorpusIndex::build(&db);
    (db, idx)
}

#[test]
fn theorem1_end_to_end_substring_count() {
    let (db, idx) = markov_index(1);
    let mut rng = StdRng::seed_from_u64(100);
    let tau = 400.0;
    let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(8.0), 0.1)
        .with_thresholds(tau, tau);
    let s = build_pure(&idx, &params, &mut rng).expect("construction succeeded");

    // (a) Structure size within the paper's O(nℓ²) bound.
    assert!(
        s.node_count() <= db.n() * db.max_len() * db.max_len(),
        "structure has {} nodes > nℓ² = {}",
        s.node_count(),
        db.n() * db.max_len() * db.max_len()
    );

    // (b) Stored counts within α of the truth (one seeded draw; α holds
    // w.p. 0.9).
    for node in s.trie().dfs() {
        if node == Trie::<f64>::ROOT {
            continue;
        }
        let pat = s.trie().string_of(node);
        let exact = idx.count(&pat) as f64;
        assert!(
            (s.query(&pat) - exact).abs() <= s.alpha_counts(),
            "{:?}: {} vs {} (α = {})",
            pat,
            s.query(&pat),
            exact,
            s.alpha_counts()
        );
    }

    // (c) Absent strings have bounded true counts: nothing with count far
    // above the pruning threshold may be missing.
    let margin = tau + s.alpha_counts();
    for p in frequent_substrings(&idx, db.max_len(), margin + 1.0, None) {
        assert!(s.contains(&p), "{:?} has count {} > {} but is absent", p, idx.count(&p), margin);
    }
}

#[test]
fn theorem2_document_count_beats_theorem1_on_error() {
    let (_, idx) = markov_index(2);
    let mut rng = StdRng::seed_from_u64(101);
    // τ must clear the pure-DP candidate noise floor (~2ℓ·3(⌊log ℓ⌋+1)/ε),
    // or spurious candidates overflow the nℓ cap (the paper's FAIL branch).
    let tau = 300.0;
    let eps = 8.0;
    let pure = build_pure(
        &idx,
        &BuildParams::new(CountMode::Document, PrivacyParams::pure(eps), 0.1)
            .with_thresholds(tau, tau),
        &mut rng,
    )
    .expect("pure construction");
    let approx = build_approx(
        &idx,
        &BuildParams::new(CountMode::Document, PrivacyParams::approx(eps, 1e-6), 0.1)
            .with_thresholds(tau, tau),
        &mut rng,
    )
    .expect("approx construction");
    // The (ε,δ) α is strictly better at Δ = 1 for ℓ = 24 (the √(ℓΔ) gain
    // dominates the extra √log(1/δ)).
    assert!(
        approx.alpha_counts() < pure.alpha_counts(),
        "Gaussian α {} should beat Laplace α {}",
        approx.alpha_counts(),
        pure.alpha_counts()
    );
}

#[test]
fn theorem3_and_4_agree_on_qgram_counts() {
    let mut rng = StdRng::seed_from_u64(3);
    // Large enough that the planted motif's document count clears Theorem
    // 4's clamped threshold (≈ 10σ ≈ 450 here).
    let corpus = dna_corpus(3000, 40, 6, &[0.7], &mut rng);
    let idx = CorpusIndex::build(&corpus.db);
    let q = 6;
    let tau = 120.0;

    let t3 = build_qgram_pure(
        &idx,
        &QgramParams {
            q,
            mode: CountMode::Document,
            privacy: PrivacyParams::pure(8.0),
            beta: 0.1,
            tau_override: Some(tau),
            level_cap_override: None,
        },
        &mut rng,
    )
    .expect("Theorem 3 construction");
    let t4 = build_qgram_fast(
        &idx,
        &FastQgramParams {
            q,
            mode: CountMode::Document,
            privacy: PrivacyParams::approx(8.0, 1e-6),
            beta: 0.1,
            tau_override: Some(tau),
        },
        &mut rng,
    )
    .expect("Theorem 4 construction");

    // Both must recover the planted motif with counts near the truth.
    let (motif, _) = &corpus.motifs[0];
    let exact = idx.document_count(motif) as f64;
    for (name, s) in [("T3", &t3), ("T4", &t4)] {
        let got = s.query(motif);
        assert!(got > 0.0, "{name}: planted motif not recovered");
        assert!(
            (got - exact).abs() <= s.alpha_counts(),
            "{name}: motif count {got} vs exact {exact} (α = {})",
            s.alpha_counts()
        );
    }
}

#[test]
fn mining_contract_holds_at_structure_alpha() {
    let (db, idx) = markov_index(4);
    let mut rng = StdRng::seed_from_u64(102);
    let build_tau = 300.0;
    let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(8.0), 0.1)
        .with_thresholds(build_tau, build_tau);
    let s = build_pure(&idx, &params, &mut rng).expect("construction succeeded");

    // Mine above the build threshold; the Definition 2 contract must hold
    // with α = structure α + build threshold slack.
    let tau = 2.0 * build_tau;
    let mined: Vec<Vec<u8>> = s.mine(tau).into_iter().map(|(g, _)| g).collect();
    let alpha = s.alpha_counts() + build_tau + s.alpha_absent();
    let eval = evaluate_mining(&idx, db.max_len(), &mined, tau, alpha, None);
    assert!(
        eval.contract_holds(),
        "missed: {:?}, spurious: {:?}",
        eval.missed.len(),
        eval.spurious.len()
    );
}

#[test]
fn queries_after_construction_are_free() {
    // Post-processing sanity: querying many times yields identical answers
    // (the structure is a fixed artifact, not a fresh mechanism per query).
    let (_, idx) = markov_index(5);
    let mut rng = StdRng::seed_from_u64(103);
    let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(8.0), 0.1)
        .with_thresholds(400.0, 400.0);
    let s = build_pure(&idx, &params, &mut rng).expect("construction succeeded");
    let first = s.query(b"ab");
    for _ in 0..100 {
        assert_eq!(s.query(b"ab"), first);
    }
    // Mining twice at the same threshold is deterministic too.
    assert_eq!(s.mine(500.0), s.mine(500.0));
}

#[test]
fn build_determinism_given_seed() {
    let (_, idx) = markov_index(6);
    let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(4.0), 0.1)
        .with_thresholds(400.0, 400.0);
    let s1 = build_pure(&idx, &params, &mut StdRng::seed_from_u64(7)).unwrap();
    let s2 = build_pure(&idx, &params, &mut StdRng::seed_from_u64(7)).unwrap();
    assert_eq!(s1.node_count(), s2.node_count());
    for node in s1.trie().dfs() {
        let pat = s1.trie().string_of(node);
        assert_eq!(s1.query(&pat), s2.query(&pat));
    }
}
