//! Privacy regression tests: the distinguishing-attack harness applied to
//! the full pipelines on the paper's worst-case neighboring instances.
//!
//! These cannot *prove* DP (no test can), but they catch the classic
//! calibration bugs — under-scaled sensitivity, budget double-spending —
//! which show up as empirical privacy loss far above the declared ε.

use dp_substring_counting::lowerbounds::{theorem6_instance, threshold_attack};
use dp_substring_counting::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn theorem1_pipeline_is_not_blatantly_leaky() {
    // Worst-case neighboring pair: a^ℓ vs b^ℓ among b^ℓ fillers. Attack the
    // released count of the pattern "a" at several thresholds.
    let inst = theorem6_instance(8, 16);
    let idx_db = CorpusIndex::build(&inst.db);
    let idx_nb = CorpusIndex::build(&inst.neighbor);
    let eps = 1.0;
    let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(eps), 0.2)
        .with_thresholds(4.0, f64::NEG_INFINITY);
    let mut rng_db = StdRng::seed_from_u64(1);
    let mut rng_nb = StdRng::seed_from_u64(2);
    let trials = 600;
    for t in [4.0, 8.0, 16.0] {
        let res = threshold_attack(
            trials,
            t,
            || match build_pure(&idx_db, &params, &mut rng_db) {
                Ok(s) => s.query(&inst.pattern),
                Err(_) => 0.0, // FAIL is also an output; count it below t
            },
            || match build_pure(&idx_nb, &params, &mut rng_nb) {
                Ok(s) => s.query(&inst.pattern),
                Err(_) => 0.0,
            },
        );
        // Sampling tolerance: with 600 trials the smoothed estimator's own
        // noise is ~±0.2; flag only clear blowups (≥ 3ε).
        assert!(
            res.epsilon_hat <= 3.0 * eps,
            "t={t}: empirical ε̂ = {:.2} vs declared ε = {eps} (p={:.3}/{:.3})",
            res.epsilon_hat,
            res.p_db,
            res.p_neighbor
        );
    }
}

#[test]
fn theorem4_pipeline_is_not_blatantly_leaky() {
    let inst = theorem6_instance(8, 16);
    let idx_db = CorpusIndex::build(&inst.db);
    let idx_nb = CorpusIndex::build(&inst.neighbor);
    let eps = 1.0;
    let params = FastQgramParams {
        q: 1,
        mode: CountMode::Substring,
        privacy: PrivacyParams::approx(eps, 1e-3),
        beta: 0.2,
        tau_override: Some(4.0),
    };
    let mut rng_db = StdRng::seed_from_u64(3);
    let mut rng_nb = StdRng::seed_from_u64(4);
    let res = threshold_attack(
        600,
        8.0,
        || build_qgram_fast(&idx_db, &params, &mut rng_db).map_or(0.0, |s| s.query(b"a")),
        || build_qgram_fast(&idx_nb, &params, &mut rng_nb).map_or(0.0, |s| s.query(b"a")),
    );
    assert!(
        res.epsilon_hat <= 3.0 * eps,
        "empirical ε̂ = {:.2} vs declared ε = {eps}",
        res.epsilon_hat
    );
}

#[test]
fn exact_structure_would_fail_the_same_attack() {
    // Control: releasing exact counts (no noise ⇒ no privacy) on the same
    // instance is caught immediately.
    let inst = theorem6_instance(8, 16);
    let idx_db = CorpusIndex::build(&inst.db);
    let idx_nb = CorpusIndex::build(&inst.neighbor);
    let res = threshold_attack(
        300,
        8.0,
        || idx_db.count(&inst.pattern) as f64,
        || idx_nb.count(&inst.pattern) as f64,
    );
    assert!(res.epsilon_hat > 4.0, "exact release must be flagged, got {}", res.epsilon_hat);
}

#[test]
fn group_privacy_degrades_linearly() {
    // Fact 2 (group privacy): k-neighboring databases admit e^{kε} ratios.
    // Empirically: a Laplace count with ε=0.3 on databases differing in 4
    // documents may show ε̂ up to ~4·0.3 but not much more.
    use dp_substring_counting::dpcore::noise::Noise;
    let ell = 16usize;
    let n = 8;
    let docs_a = vec![vec![b'b'; ell]; n];
    let mut docs_b = docs_a.clone();
    for doc in docs_b.iter_mut().take(4) {
        *doc = vec![b'a'; ell];
    }
    let count = |docs: &[Vec<u8>]| {
        docs.iter().map(|d| dp_substring_counting::strkit::naive_count(b"a", d)).sum::<usize>()
            as f64
    };
    let eps = 0.3;
    let noise = Noise::laplace_for(eps, ell as f64);
    let mut rng_a = StdRng::seed_from_u64(5);
    let mut rng_b = StdRng::seed_from_u64(6);
    let (ca, cb) = (count(&docs_a), count(&docs_b));
    let res = threshold_attack(
        20_000,
        32.0,
        || cb + noise.sample(&mut rng_b),
        || ca + noise.sample(&mut rng_a),
    );
    assert!(
        res.epsilon_hat <= 4.0 * eps + 0.3,
        "group privacy bound violated: ε̂ = {}",
        res.epsilon_hat
    );
    // And it is genuinely larger than a single-neighbor leak (the gap is
    // 4ℓ, not ℓ).
    assert!(res.epsilon_hat > eps, "expected ≈ 4ε leak, got {}", res.epsilon_hat);
}
