//! Property-based tests for the string and indexing substrates: the exact
//! layers everything else trusts.

use dp_substring_counting::strkit::alphabet::{Alphabet, Database};
use dp_substring_counting::strkit::lce::Lce;
use dp_substring_counting::strkit::lcp::{naive_lcp, LcpArray};
use dp_substring_counting::strkit::search::count_occurrences;
use dp_substring_counting::strkit::suffix_array::{naive_suffix_array, SuffixArray};
use dp_substring_counting::strkit::trie::Trie;
use dp_substring_counting::strkit::{naive_contains, naive_count};
use dp_substring_counting::textindex::{depth_groups, CorpusIndex, MergeSortTree};
use proptest::prelude::*;

fn small_text() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(vec![b'a', b'b', b'c']), 0..60)
}

fn small_docs() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::sample::select(vec![b'a', b'b', b'c']), 1..16),
        1..10,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn suffix_array_matches_naive(text in small_text()) {
        let sa = SuffixArray::from_bytes(&text);
        let expected = naive_suffix_array(&text);
        prop_assert_eq!(sa.sa(), expected.as_slice());
    }

    #[test]
    fn lcp_matches_naive(text in small_text()) {
        let sa = SuffixArray::from_bytes(&text);
        let lcp = LcpArray::build(&text, &sa);
        for i in 1..text.len() {
            let a = sa.sa()[i - 1] as usize;
            let b = sa.sa()[i] as usize;
            prop_assert_eq!(lcp.values()[i] as usize, naive_lcp(&text[a..], &text[b..]));
        }
    }

    #[test]
    fn lce_matches_naive(text in small_text(), i in 0usize..60, j in 0usize..60) {
        prop_assume!(i <= text.len() && j <= text.len());
        let lce = Lce::from_bytes(&text);
        prop_assert_eq!(lce.lce(i, j), naive_lcp(&text[i..], &text[j..]));
    }

    #[test]
    fn sa_search_counts_match_naive(text in small_text(), pat in small_text()) {
        prop_assume!(!text.is_empty());
        let sa = SuffixArray::from_bytes(&text);
        prop_assert_eq!(count_occurrences(&pat[..], &text, &sa), naive_count(&pat, &text));
    }

    #[test]
    fn corpus_counts_match_brute_force(docs in small_docs(), delta in 1usize..6) {
        let db = Database::from_documents(Alphabet::lowercase(3), docs.clone()).unwrap();
        let idx = CorpusIndex::build(&db);
        // Probe every substring of every document plus an absent pattern.
        let mut pats: Vec<Vec<u8>> = vec![b"zz".to_vec()];
        for doc in &docs {
            for i in 0..doc.len() {
                for j in i + 1..=doc.len().min(i + 6) {
                    pats.push(doc[i..j].to_vec());
                }
            }
        }
        for p in pats {
            let want_count: usize = docs.iter().map(|d| naive_count(&p, d)).sum();
            let want_docs = docs.iter().filter(|d| naive_contains(&p, d)).count();
            let want_clip: u64 =
                docs.iter().map(|d| naive_count(&p, d).min(delta) as u64).sum();
            prop_assert_eq!(idx.count(&p), want_count);
            prop_assert_eq!(idx.document_count(&p), want_docs);
            prop_assert_eq!(idx.count_clipped(&p, delta), want_clip);
        }
    }

    #[test]
    fn depth_groups_partition_distinct_substrings(docs in small_docs(), d in 1usize..8) {
        let db = Database::from_documents(Alphabet::lowercase(3), docs.clone()).unwrap();
        let idx = CorpusIndex::build(&db);
        let groups = depth_groups(&idx, d);
        // Distinct d-substrings by brute force.
        let mut want: std::collections::BTreeMap<Vec<u8>, usize> = Default::default();
        for doc in &docs {
            if doc.len() >= d {
                for w in doc.windows(d) {
                    *want.entry(w.to_vec()).or_insert(0) += 1;
                }
            }
        }
        prop_assert_eq!(groups.len(), want.len());
        for (g, (gram, cnt)) in groups.iter().zip(want.iter()) {
            prop_assert_eq!(&idx.decode_substring(g.witness_pos as usize, d), gram);
            prop_assert_eq!(g.count(), *cnt);
        }
    }

    #[test]
    fn mergesort_tree_matches_naive(
        values in proptest::collection::vec(-50i64..50, 0..50),
        bound in -60i64..60,
    ) {
        let tree = MergeSortTree::build(&values);
        for lo in 0..=values.len() {
            for hi in lo..=values.len() {
                let want = values[lo..hi].iter().filter(|&&v| v < bound).count();
                prop_assert_eq!(tree.count_less(lo, hi, bound), want);
            }
        }
    }

    #[test]
    fn trie_roundtrip(strings in proptest::collection::vec(
        proptest::collection::vec(proptest::sample::select(vec![b'a', b'b']), 1..8), 1..20)
    ) {
        let mut trie: Trie<u32> = Trie::new(0);
        for (i, s) in strings.iter().enumerate() {
            let node = trie.insert_path(s, |_| 0);
            *trie.value_mut(node) = i as u32 + 1;
        }
        // Every inserted string is found; walk() of any prefix works.
        for s in &strings {
            let node = trie.walk(s).expect("inserted string found");
            prop_assert_eq!(trie.string_of(node), s.clone());
            for cut in 0..s.len() {
                prop_assert!(trie.walk(&s[..cut]).is_some());
            }
        }
        // DFS visits every node exactly once.
        let visited: Vec<u32> = trie.dfs().collect();
        prop_assert_eq!(visited.len(), trie.len());
        let set: std::collections::HashSet<u32> = visited.into_iter().collect();
        prop_assert_eq!(set.len(), trie.len());
    }
}
