//! Property tests for the paper's sensitivity lemmas — the load-bearing
//! claims behind every noise calibration. Each test draws random
//! *neighboring* databases and checks the analytic bound empirically.

use dp_substring_counting::hierarchy::heavy_path::HeavyPathDecomposition;
use dp_substring_counting::private_count::pipeline::{build_count_trie, trie_topology};
use dp_substring_counting::strkit::alphabet::{Alphabet, Database};
use dp_substring_counting::strkit::naive_count;
use dp_substring_counting::strkit::trie::Trie;
use dp_substring_counting::textindex::CorpusIndex;
use proptest::prelude::*;

fn docs_strategy() -> impl Strategy<Value = (Vec<Vec<u8>>, Vec<u8>, usize)> {
    // (documents, replacement document, index to replace)
    (
        proptest::collection::vec(
            proptest::collection::vec(proptest::sample::select(vec![b'a', b'b', b'c']), 1..12),
            2..8,
        ),
        proptest::collection::vec(proptest::sample::select(vec![b'a', b'b', b'c']), 1..12),
    )
        .prop_flat_map(|(docs, repl)| {
            let n = docs.len();
            (Just(docs), Just(repl), 0..n)
        })
}

/// All distinct substrings of a byte string.
fn substrings(s: &[u8]) -> std::collections::BTreeSet<Vec<u8>> {
    let mut out = std::collections::BTreeSet::new();
    for i in 0..s.len() {
        for j in i + 1..=s.len() {
            out.insert(s[i..j].to_vec());
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Observation 1 / Corollary 3: for any fixed length m, the total count
    /// of length-m substrings of one document is ≤ ℓ, so the L1 sensitivity
    /// of the length-m count vector is ≤ 2ℓ.
    #[test]
    fn corollary3_per_length_sensitivity((docs, repl, i) in docs_strategy()) {
        let ell = docs.iter().map(Vec::len).max().unwrap().max(repl.len());
        let db = Database::new(Alphabet::lowercase(3), ell, docs.clone()).unwrap();
        let nb = db.neighbor_replacing(i, repl.clone()).unwrap();
        for m in 1..=ell {
            // Sum over all patterns of length m of |count(P,D) − count(P,D')|.
            let mut pats = substrings(&docs[i]);
            pats.extend(substrings(&repl));
            let l1: i64 = pats
                .iter()
                .filter(|p| p.len() == m)
                .map(|p| {
                    let a: i64 = db.documents().iter().map(|d| naive_count(p, d) as i64).sum();
                    let b: i64 = nb.documents().iter().map(|d| naive_count(p, d) as i64).sum();
                    (a - b).abs()
                })
                .sum();
            prop_assert!(l1 <= 2 * ell as i64, "length {m}: L1 = {l1} > 2ℓ = {}", 2 * ell);
        }
    }

    /// Observation 2: the count difference of any trie node between
    /// neighbors depends only on the replaced documents.
    #[test]
    fn observation2_node_difference((docs, repl, i) in docs_strategy()) {
        let ell = docs.iter().map(Vec::len).max().unwrap().max(repl.len());
        let db = Database::new(Alphabet::lowercase(3), ell, docs.clone()).unwrap();
        let nb = db.neighbor_replacing(i, repl.clone()).unwrap();
        let mut pats = substrings(&docs[i]);
        pats.extend(substrings(&repl));
        pats.insert(b"ab".to_vec());
        for p in &pats {
            let a: i64 = db.documents().iter().map(|d| naive_count(p, d) as i64).sum();
            let b: i64 = nb.documents().iter().map(|d| naive_count(p, d) as i64).sum();
            let local = naive_count(p, &docs[i]) as i64 - naive_count(p, &repl) as i64;
            prop_assert_eq!((a - b).abs(), local.abs());
        }
    }

    /// Lemma 10: across the heavy-path roots of the candidate trie, the
    /// total count contributed by any single document is at most
    /// ℓ·(⌊log|T_C|⌋ + 1).
    #[test]
    fn lemma10_root_mass((docs, _repl, i) in docs_strategy()) {
        let ell = docs.iter().map(Vec::len).max().unwrap();
        let db = Database::new(Alphabet::lowercase(3), ell, docs.clone()).unwrap();
        let idx = CorpusIndex::build(&db);
        // T_C over all substrings of the database (the worst case).
        let mut cands: Vec<Vec<u8>> = Vec::new();
        for d in db.documents() {
            cands.extend(substrings(d));
        }
        cands.sort();
        cands.dedup();
        let trie = build_count_trie(&idx, &cands, ell);
        let tree = trie_topology(&trie);
        let hpd = HeavyPathDecomposition::new(&tree);
        let levels = (usize::BITS - (trie.len() as usize).leading_zeros()) as usize;
        let s = &docs[i];
        let mass: usize = hpd
            .paths()
            .iter()
            .map(|path| {
                let root = path[0];
                if root == Trie::<u64>::ROOT {
                    // The paper's Lemma 10 counts occurrences of str(r); the
                    // trie root is the empty string with count(ε, S) = |S|.
                    s.len()
                } else {
                    naive_count(&trie.string_of(root), s)
                }
            })
            .sum();
        prop_assert!(
            mass <= ell * levels,
            "root mass {mass} > ℓ(⌊log|T_C|⌋+1) = {}",
            ell * levels
        );
    }

    /// Lemma 8: per heavy path, the L1 distance of difference sequences
    /// between neighbors is bounded by count(str(root), S) + count(str(root), S').
    #[test]
    fn lemma8_difference_sequences((docs, repl, i) in docs_strategy()) {
        let ell = docs.iter().map(Vec::len).max().unwrap().max(repl.len());
        let db = Database::new(Alphabet::lowercase(3), ell, docs.clone()).unwrap();
        let nb = db.neighbor_replacing(i, repl.clone()).unwrap();
        let idx = CorpusIndex::build(&db);
        let idx_nb = CorpusIndex::build(&nb);
        let mut cands: Vec<Vec<u8>> = Vec::new();
        for d in db.documents().iter().chain(nb.documents()) {
            cands.extend(substrings(d));
        }
        cands.sort();
        cands.dedup();
        // Same trie shape for both databases (the union of candidates).
        let trie = build_count_trie(&idx, &cands, ell);
        let trie_nb = build_count_trie(&idx_nb, &cands, ell);
        prop_assert_eq!(trie.len(), trie_nb.len());
        let tree = trie_topology(&trie);
        let hpd = HeavyPathDecomposition::new(&tree);
        for path in hpd.paths() {
            let mut l1 = 0i64;
            for w in path.windows(2) {
                let d_a = *trie.value(w[1]) as i64 - *trie.value(w[0]) as i64;
                let d_b = *trie_nb.value(w[1]) as i64 - *trie_nb.value(w[0]) as i64;
                l1 += (d_a - d_b).abs();
            }
            let root = path[0];
            let bound = if root == Trie::<u64>::ROOT {
                (docs[i].len() + repl.len()) as i64
            } else {
                let s = trie.string_of(root);
                (naive_count(&s, &docs[i]) + naive_count(&s, &repl)) as i64
            };
            prop_assert!(l1 <= bound, "path at {:?}: {l1} > {bound}", trie.string_of(root));
        }
    }
}
