//! The executable conformance contract: the fast-tier scenario matrix must
//! run clean (zero violations) inside the tier-1 test budget, cover every
//! axis {workload × ε × mechanism × pruning}, and be byte-for-byte
//! deterministic in its seed — so any future pipeline refactor that breaks
//! a guarantee (noise calibration, sensitivity, α accounting, pruning
//! bound) turns into a red test naming the violated check.

mod common;

use dp_substring_counting::audit::{Tier, WORKLOADS};
use dp_substring_counting::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn fast_matrix_is_conformant_and_covers_every_axis() {
    let report = run_matrix(&AuditConfig::fast());
    assert_eq!(
        report.violations(),
        0,
        "conformance violations:\n{}",
        report.violation_lines().join("\n")
    );
    assert!(report.pass());

    // Axis coverage: all four workloads × both mechanisms × ≥ 2 ε values ×
    // both pruning configs, plus the distribution and adversarial groups.
    for wl in WORKLOADS {
        for mech in ["laplace", "gaussian"] {
            let eps: std::collections::BTreeSet<String> = report
                .scenarios
                .iter()
                .filter(|s| s.workload == wl && s.mechanism == mech && s.pruning != "mining")
                .map(|s| format!("{}", s.epsilon))
                .collect();
            assert!(eps.len() >= 2, "{wl}/{mech}: swept ε values {eps:?}");
            for pruning in ["off", "analytic"] {
                assert!(
                    report
                        .scenarios
                        .iter()
                        .any(|s| s.workload == wl && s.mechanism == mech && s.pruning == pruning),
                    "{wl}/{mech}/{pruning} missing from the matrix"
                );
            }
        }
    }
    for group in ["noise", "adversarial-t6", "adversarial-markov"] {
        assert!(
            report.scenarios.iter().any(|s| s.workload == group),
            "audit group {group} missing"
        );
    }
    assert!(report.total_checks() >= 100, "only {} checks ran", report.total_checks());
}

#[test]
fn matrix_report_is_seed_deterministic() {
    // A trimmed single-ε config keeps the double run cheap; determinism is
    // a property of the seed plumbing, not of the sweep width.
    let cfg = AuditConfig { tier: Tier::Fast, seed: 77, epsilons: vec![1.0] };
    let a = run_matrix(&cfg);
    let b = run_matrix(&cfg);
    assert_eq!(a.to_json(), b.to_json(), "same seed must give byte-identical reports");

    let c = run_matrix(&AuditConfig { seed: 78, ..cfg });
    assert_ne!(
        a.to_json(),
        c.to_json(),
        "a different seed must actually change the sampled statistics"
    );
}

#[test]
fn audited_structure_builds_under_retry_and_serves() {
    // The retry helper in action on a real mixed-regime build: ε = 60 on
    // the paper's toy database FAILs for roughly half the seeds
    // (legitimately); the helper must find a succeeding one and never let
    // the check go vacuous.
    let db = Database::paper_example();
    let idx = CorpusIndex::build(&db);
    let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(60.0), 0.2)
        .with_thresholds(1.5, 1.5);
    let structure = common::with_retry_seeds(1, 16, |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        build_pure(&idx, &params, &mut rng).ok()
    });
    // Whatever survived is a valid release: finite counts within the
    // published error budget of the exact count.
    let alpha = structure.alpha_counts();
    assert!(alpha.is_finite() && alpha > 0.0);
    for node_pat in [&b"a"[..], b"ab", b"b"] {
        let got = structure.query(node_pat);
        assert!(got.is_finite());
        if structure.contains(node_pat) {
            let exact = idx.count_clipped(node_pat, db.max_len()) as f64;
            assert!(
                (got - exact).abs() <= alpha,
                "{node_pat:?}: {got} vs exact {exact} (α = {alpha})"
            );
        }
    }
}
