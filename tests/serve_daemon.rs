//! End-to-end contracts of the serving daemon: served answers are
//! bit-identical to local synopsis queries, a mid-traffic hot snapshot
//! swap never blocks readers or blends epochs, cache hits return exactly
//! what a cold walk returns, and `Stats` surfaces the utility bounds of
//! what is actually being served.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dp_substring_counting::prelude::*;
use dp_substring_counting::serve::{Request, Response};
use dp_substring_counting::strkit::trie::Trie;
use dp_substring_counting::workloads::markov_corpus;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Theorem-1 build over a Markov corpus plus a present/absent pattern
/// mix from its documents.
fn dp_built(seed: u64) -> (FrozenSynopsis, Vec<Vec<u8>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let db = markov_corpus(80, 16, 4, 0.6, &mut rng);
    let idx = CorpusIndex::build(&db);
    let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(1e4), 0.1)
        .with_thresholds(1.5, 1.5);
    let s = build_pure(&idx, &params, &mut rng).expect("construction succeeds");
    let mut patterns: Vec<Vec<u8>> = Vec::new();
    for doc in db.documents() {
        patterns.push(doc[..doc.len().min(5)].to_vec());
    }
    for _ in 0..40 {
        let len = rng.gen_range(2..8usize);
        patterns.push((0..len).map(|_| rng.gen_range(b'0'..=b'9')).collect());
    }
    (s.freeze(), patterns)
}

/// A synthetic synopsis over a fixed key set whose every count is
/// `base + i` — two of these with different `base` disagree on *every*
/// stored node, which is what makes the no-blend assertion sharp.
fn synthetic(base: f64) -> FrozenSynopsis {
    let mut trie: Trie<f64> = Trie::new(base);
    let keys: Vec<Vec<u8>> = (0..50u8)
        .map(|i| vec![b'a' + (i % 4), b'a' + ((i / 4) % 4), b'a' + ((i / 16) % 4)])
        .collect();
    for (i, key) in keys.iter().enumerate() {
        let node = trie.insert_path(key, |_| 0.0);
        *trie.value_mut(node) = base + i as f64;
    }
    PrivateCountStructure::new(
        trie,
        CountMode::Substring,
        PrivacyParams::pure(2.0),
        3.0,
        4.0,
        50,
        3,
    )
    .freeze()
}

fn spawn_daemon(manager: Arc<ShardManager>) -> dp_substring_counting::serve::ServerHandle {
    Server::spawn(ServerConfig { workers: 3, ..ServerConfig::default() }, manager)
        .expect("daemon binds a loopback port")
}

#[test]
fn served_answers_are_bit_identical_to_local_queries() {
    let (frozen, patterns) = dp_built(31);
    let bytes = frozen.to_bytes();
    let manager = Arc::new(ShardManager::new());
    let handle = spawn_daemon(Arc::clone(&manager));
    let mut client = Client::connect(handle.addr()).expect("client connects");

    // Snapshot shipped over the wire, not installed in-process.
    let epoch = client.load_snapshot(5, &bytes).expect("snapshot loads");
    assert_eq!(epoch, 1, "first install is epoch 1");

    for p in &patterns {
        let served = client.query(5, p).expect("query answered");
        assert_eq!(served.to_bits(), frozen.query(p).to_bits(), "pattern {p:?}");
        let present = client.contains(5, p).expect("contains answered");
        assert_eq!(present, frozen.contains(p), "pattern {p:?}");
    }
    let refs: Vec<&[u8]> = patterns.iter().map(|p| p.as_slice()).collect();
    let served = client.query_batch(5, &refs).expect("batch answered");
    let local = frozen.query_batch(&refs);
    assert_eq!(served.len(), local.len());
    for (s, l) in served.iter().zip(&local) {
        assert_eq!(s.to_bits(), l.to_bits());
    }
    handle.shutdown();
}

#[test]
fn pipelined_bursts_answer_in_order() {
    let (frozen, patterns) = dp_built(32);
    let manager = Arc::new(ShardManager::new());
    manager.install(0, frozen.clone(), frozen.to_bytes().len());
    let handle = spawn_daemon(Arc::clone(&manager));
    let mut client = Client::connect(handle.addr()).expect("client connects");

    let requests: Vec<Request> =
        patterns.iter().map(|p| Request::Query { shard: 0, pattern: p.clone() }).collect();
    let responses = client.pipeline(&requests).expect("burst answered");
    assert_eq!(responses.len(), requests.len());
    for (resp, p) in responses.iter().zip(&patterns) {
        match resp {
            Response::Query { value } => {
                assert_eq!(value.to_bits(), frozen.query(p).to_bits(), "pattern {p:?}")
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    handle.shutdown();
}

#[test]
fn unknown_shards_and_corrupt_snapshots_error_without_killing_the_daemon() {
    let (frozen, _) = dp_built(33);
    let bytes = frozen.to_bytes();
    let manager = Arc::new(ShardManager::new());
    let handle = spawn_daemon(Arc::clone(&manager));
    let mut client = Client::connect(handle.addr()).expect("client connects");

    // Unknown shard: typed server error, connection stays usable.
    let err = client.query(77, b"ab").expect_err("unknown shard must error");
    assert!(err.to_string().contains("unknown shard 77"), "got: {err}");

    // Corrupt snapshot: rejected by the decode path, nothing installed.
    let mut corrupt = bytes.clone();
    corrupt[20] ^= 0xFF;
    let err = client.load_snapshot(0, &corrupt).expect_err("corrupt snapshot must error");
    assert!(err.to_string().contains("snapshot rejected"), "got: {err}");
    assert!(manager.snapshot(0).is_none(), "failed load must not install");

    // The same connection still serves once a good snapshot lands.
    client.load_snapshot(0, &bytes).expect("good snapshot loads");
    assert!(client.query(0, b"").expect("query answered").is_finite());
    handle.shutdown();
}

/// The no-blend invariant: while `LoadSnapshot` hot-swaps between two
/// synopses that disagree on every stored count, every concurrently
/// served `QueryBatch` matches one generation exactly — never a mix —
/// and readers keep making progress throughout (the swap never blocks
/// them on the load/validate work).
#[test]
fn hot_swap_never_blends_epochs_for_concurrent_readers() {
    let gen_a = synthetic(1_000.0);
    let gen_b = synthetic(9_000.0);
    let bytes_a = gen_a.to_bytes();
    let bytes_b = gen_b.to_bytes();

    let probe: Vec<Vec<u8>> = (0..50u8)
        .map(|i| vec![b'a' + (i % 4), b'a' + ((i / 4) % 4), b'a' + ((i / 16) % 4)])
        .collect();
    let refs: Vec<&[u8]> = probe.iter().map(|p| p.as_slice()).collect();
    let expect_a: Vec<u64> = gen_a.query_batch(&refs).iter().map(|v| v.to_bits()).collect();
    let expect_b: Vec<u64> = gen_b.query_batch(&refs).iter().map(|v| v.to_bits()).collect();
    assert_ne!(expect_a, expect_b);

    let manager = Arc::new(ShardManager::new());
    manager.install(0, gen_a.clone(), bytes_a.len());
    let handle = spawn_daemon(Arc::clone(&manager));
    let addr = handle.addr();

    let stop = AtomicBool::new(false);
    let swaps = 40usize;
    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..2 {
            readers.push(scope.spawn(|| {
                let mut client = Client::connect(addr).expect("reader connects");
                let mut batches = 0usize;
                let mut saw = [false, false];
                while !stop.load(Ordering::Relaxed) {
                    let served = client.query_batch(0, &refs).expect("batch answered");
                    let bits: Vec<u64> = served.iter().map(|v| v.to_bits()).collect();
                    if bits == expect_a {
                        saw[0] = true;
                    } else if bits == expect_b {
                        saw[1] = true;
                    } else {
                        panic!("batch blends epochs: {bits:?}");
                    }
                    batches += 1;
                }
                (batches, saw)
            }));
        }
        // Swapper: alternate generations over a separate admin connection.
        let mut admin = Client::connect(addr).expect("admin connects");
        let mut last_epoch = 0;
        for i in 0..swaps {
            let bytes = if i % 2 == 0 { &bytes_b } else { &bytes_a };
            let epoch = admin.load_snapshot(0, bytes).expect("hot swap succeeds");
            assert!(epoch > last_epoch, "epochs strictly increase");
            last_epoch = epoch;
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        stop.store(true, Ordering::Relaxed);
        let mut total_batches = 0usize;
        let mut saw_any = [false, false];
        for r in readers {
            let (batches, saw) = r.join().expect("reader thread clean");
            total_batches += batches;
            saw_any[0] |= saw[0];
            saw_any[1] |= saw[1];
        }
        // Readers made progress during the swap storm, and traffic really
        // exercised both generations (not vacuously pinned to one).
        assert!(total_batches >= swaps, "readers starved: {total_batches} batches");
        assert!(saw_any[0] && saw_any[1], "swap never took effect under traffic: {saw_any:?}");
    });
    handle.shutdown();
}

#[test]
fn cache_hits_are_bit_identical_and_epoch_keyed() {
    let gen_a = synthetic(10.0);
    let gen_b = synthetic(20.0);
    let manager = Arc::new(ShardManager::new());
    manager.install(0, gen_a.clone(), 0);
    let handle = spawn_daemon(Arc::clone(&manager));
    let mut client = Client::connect(handle.addr()).expect("client connects");

    let pattern = b"aba";
    // Cold, then hot: same bits, and the hit counter moves.
    let cold = client.query(0, pattern).expect("cold query");
    let before = client.stats().expect("stats").cache;
    let hot = client.query(0, pattern).expect("hot query");
    let after = client.stats().expect("stats").cache;
    assert_eq!(hot.to_bits(), cold.to_bits(), "cache hit must be bit-identical");
    assert_eq!(cold.to_bits(), gen_a.query(pattern).to_bits());
    assert!(after.hits > before.hits, "second query must hit the cache");

    // Hot swap: the same pattern now answers from the new epoch — stale
    // cache entries are unreachable by key construction.
    client.load_snapshot(0, &gen_b.to_bytes()).expect("hot swap");
    let swapped = client.query(0, pattern).expect("post-swap query");
    assert_eq!(swapped.to_bits(), gen_b.query(pattern).to_bits());
    assert_ne!(swapped.to_bits(), cold.to_bits(), "old epoch's cached value must not leak");
    handle.shutdown();
}

#[test]
fn stats_surface_per_shard_sizes_and_utility_bounds() {
    let (frozen_a, _) = dp_built(34);
    let gen_b = synthetic(5.0);
    let bytes_a = frozen_a.to_bytes();
    let bytes_b = gen_b.to_bytes();

    let manager = Arc::new(ShardManager::new());
    let handle = spawn_daemon(Arc::clone(&manager));
    let mut client = Client::connect(handle.addr()).expect("client connects");
    client.load_snapshot(2, &bytes_a).expect("shard 2 loads");
    client.load_snapshot(7, &bytes_b).expect("shard 7 loads");

    let stats = client.stats().expect("stats answered");
    assert_eq!(stats.cache.capacity, ServerConfig::default().cache_capacity as u64);
    assert_eq!(stats.shards.len(), 2);
    assert_eq!(stats.shards[0].shard_id, 2, "shards come back ascending");
    assert_eq!(stats.shards[1].shard_id, 7);

    let s = &stats.shards[0];
    assert_eq!(s.node_count, frozen_a.node_count() as u64);
    assert_eq!(s.serialized_len, bytes_a.len() as u64);
    assert_eq!(s.alpha, frozen_a.alpha());
    assert_eq!(s.alpha_counts, frozen_a.alpha_counts());
    assert_eq!(s.alpha_absent, frozen_a.alpha_absent());
    assert_eq!(s.epsilon, frozen_a.privacy().epsilon);
    assert_eq!(s.delta, frozen_a.privacy().delta);
    let (n_docs, max_len) = frozen_a.db_params();
    assert_eq!((s.n_docs, s.max_len), (n_docs as u64, max_len as u64));

    let s = &stats.shards[1];
    assert_eq!(s.node_count, gen_b.node_count() as u64);
    assert_eq!(s.serialized_len, bytes_b.len() as u64);
    assert_eq!(s.epsilon, 2.0);
    handle.shutdown();
}

/// Shipping a v2 uncompressed snapshot over the wire installs it
/// *borrowed*: the resident synopsis answers straight out of the received
/// frame buffer (zero per-array copies), bit-identically to a local
/// decode, and hot-swaps back to owned v1 still work on the same shard.
#[test]
fn v2_snapshots_serve_borrowed_over_the_wire() {
    let (frozen, patterns) = dp_built(35);
    let v2 = frozen.to_bytes_v2(false);
    let manager = Arc::new(ShardManager::new());
    let handle = spawn_daemon(Arc::clone(&manager));
    let mut client = Client::connect(handle.addr()).expect("client connects");

    client.load_snapshot(1, &v2).expect("v2 snapshot loads");
    let resident = manager.snapshot(1).expect("shard resident");
    assert!(resident.synopsis.is_borrowed(), "wire-shipped uncompressed v2 must serve borrowed");
    assert_eq!(resident.serialized_len, v2.len());
    for p in &patterns {
        let served = client.query(1, p).expect("query answered");
        assert_eq!(served.to_bits(), frozen.query(p).to_bits(), "pattern {p:?}");
    }

    // Swapping the same shard back to a v1 snapshot lands owned.
    client.load_snapshot(1, &frozen.to_bytes()).expect("v1 snapshot loads");
    assert!(!manager.snapshot(1).unwrap().synopsis.is_borrowed());
    assert!(client.query(1, b"").expect("query answered").is_finite());
    handle.shutdown();
}

/// Regression: a daemon bound to the wildcard address must still shut
/// down promptly. `shutdown` wakes the blocked acceptor with a loopback
/// connection — connecting to the *bound* `0.0.0.0` address is not
/// reliably routable, which used to leave the join hanging on platforms
/// that refuse such connects.
#[test]
fn shutdown_wakes_a_wildcard_bound_acceptor() {
    let (frozen, _) = dp_built(36);
    let manager = Arc::new(ShardManager::new());
    let config = ServerConfig { addr: "0.0.0.0:0".to_string(), workers: 2, cache_capacity: 64 };
    let handle = Server::spawn(config, Arc::clone(&manager)).expect("daemon binds wildcard");
    assert!(handle.addr().ip().is_unspecified(), "test must exercise a wildcard bind");

    // The daemon is reachable via loopback on the bound port.
    let mut client = Client::connect(("127.0.0.1", handle.addr().port())).expect("client connects");
    client.load_snapshot(0, &frozen.to_bytes()).expect("snapshot loads");
    assert!(client.query(0, b"").expect("query answered").is_finite());
    drop(client);

    // Bounded shutdown: the join must complete without an organic wake.
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        handle.shutdown();
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(std::time::Duration::from_secs(10))
        .expect("wildcard-bound daemon failed to shut down within 10s");
}
