//! End-to-end contracts of the serving daemon: served answers are
//! bit-identical to local synopsis queries, a mid-traffic hot snapshot
//! swap never blocks readers or blends epochs, cache hits return exactly
//! what a cold walk returns, and `Stats` surfaces the utility bounds of
//! what is actually being served.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use dp_substring_counting::prelude::*;
use dp_substring_counting::serve::wire::decode_response;
use dp_substring_counting::serve::{RealIo, Request, Response, StoreIo};
use dp_substring_counting::strkit::trie::Trie;
use dp_substring_counting::workloads::markov_corpus;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Theorem-1 build over a Markov corpus plus a present/absent pattern
/// mix from its documents.
fn dp_built(seed: u64) -> (FrozenSynopsis, Vec<Vec<u8>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let db = markov_corpus(80, 16, 4, 0.6, &mut rng);
    let idx = CorpusIndex::build(&db);
    let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(1e4), 0.1)
        .with_thresholds(1.5, 1.5);
    let s = build_pure(&idx, &params, &mut rng).expect("construction succeeds");
    let mut patterns: Vec<Vec<u8>> = Vec::new();
    for doc in db.documents() {
        patterns.push(doc[..doc.len().min(5)].to_vec());
    }
    for _ in 0..40 {
        let len = rng.gen_range(2..8usize);
        patterns.push((0..len).map(|_| rng.gen_range(b'0'..=b'9')).collect());
    }
    (s.freeze(), patterns)
}

/// A synthetic synopsis over a fixed key set whose every count is
/// `base + i` — two of these with different `base` disagree on *every*
/// stored node, which is what makes the no-blend assertion sharp.
fn synthetic(base: f64) -> FrozenSynopsis {
    let mut trie: Trie<f64> = Trie::new(base);
    let keys: Vec<Vec<u8>> = (0..50u8)
        .map(|i| vec![b'a' + (i % 4), b'a' + ((i / 4) % 4), b'a' + ((i / 16) % 4)])
        .collect();
    for (i, key) in keys.iter().enumerate() {
        let node = trie.insert_path(key, |_| 0.0);
        *trie.value_mut(node) = base + i as f64;
    }
    PrivateCountStructure::new(
        trie,
        CountMode::Substring,
        PrivacyParams::pure(2.0),
        3.0,
        4.0,
        50,
        3,
    )
    .freeze()
}

fn spawn_daemon(manager: Arc<ShardManager>) -> dp_substring_counting::serve::ServerHandle {
    Server::spawn(ServerConfig { workers: 3, ..ServerConfig::default() }, manager)
        .expect("daemon binds a loopback port")
}

#[test]
fn served_answers_are_bit_identical_to_local_queries() {
    let (frozen, patterns) = dp_built(31);
    let bytes = frozen.to_bytes();
    let manager = Arc::new(ShardManager::new());
    let handle = spawn_daemon(Arc::clone(&manager));
    let mut client = Client::connect(handle.addr()).expect("client connects");

    // Snapshot shipped over the wire, not installed in-process.
    let epoch = client.load_snapshot(5, &bytes).expect("snapshot loads");
    assert_eq!(epoch, 1, "first install is epoch 1");

    for p in &patterns {
        let served = client.query(5, p).expect("query answered");
        assert_eq!(served.to_bits(), frozen.query(p).to_bits(), "pattern {p:?}");
        let present = client.contains(5, p).expect("contains answered");
        assert_eq!(present, frozen.contains(p), "pattern {p:?}");
    }
    let refs: Vec<&[u8]> = patterns.iter().map(|p| p.as_slice()).collect();
    let served = client.query_batch(5, &refs).expect("batch answered");
    let local = frozen.query_batch(&refs);
    assert_eq!(served.len(), local.len());
    for (s, l) in served.iter().zip(&local) {
        assert_eq!(s.to_bits(), l.to_bits());
    }
    handle.shutdown();
}

#[test]
fn pipelined_bursts_answer_in_order() {
    let (frozen, patterns) = dp_built(32);
    let manager = Arc::new(ShardManager::new());
    manager.install(0, frozen.clone(), frozen.to_bytes().len());
    let handle = spawn_daemon(Arc::clone(&manager));
    let mut client = Client::connect(handle.addr()).expect("client connects");

    let requests: Vec<Request> =
        patterns.iter().map(|p| Request::Query { shard: 0, pattern: p.clone() }).collect();
    let responses = client.pipeline(&requests).expect("burst answered");
    assert_eq!(responses.len(), requests.len());
    for (resp, p) in responses.iter().zip(&patterns) {
        match resp {
            Response::Query { value } => {
                assert_eq!(value.to_bits(), frozen.query(p).to_bits(), "pattern {p:?}")
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    handle.shutdown();
}

#[test]
fn unknown_shards_and_corrupt_snapshots_error_without_killing_the_daemon() {
    let (frozen, _) = dp_built(33);
    let bytes = frozen.to_bytes();
    let manager = Arc::new(ShardManager::new());
    let handle = spawn_daemon(Arc::clone(&manager));
    let mut client = Client::connect(handle.addr()).expect("client connects");

    // Unknown shard: typed server error, connection stays usable.
    let err = client.query(77, b"ab").expect_err("unknown shard must error");
    assert!(err.to_string().contains("unknown shard 77"), "got: {err}");

    // Corrupt snapshot: rejected by the decode path, nothing installed.
    let mut corrupt = bytes.clone();
    corrupt[20] ^= 0xFF;
    let err = client.load_snapshot(0, &corrupt).expect_err("corrupt snapshot must error");
    assert!(err.to_string().contains("snapshot rejected"), "got: {err}");
    assert!(manager.snapshot(0).is_none(), "failed load must not install");

    // The same connection still serves once a good snapshot lands.
    client.load_snapshot(0, &bytes).expect("good snapshot loads");
    assert!(client.query(0, b"").expect("query answered").is_finite());
    handle.shutdown();
}

/// The no-blend invariant: while `LoadSnapshot` hot-swaps between two
/// synopses that disagree on every stored count, every concurrently
/// served `QueryBatch` matches one generation exactly — never a mix —
/// and readers keep making progress throughout (the swap never blocks
/// them on the load/validate work).
#[test]
fn hot_swap_never_blends_epochs_for_concurrent_readers() {
    let gen_a = synthetic(1_000.0);
    let gen_b = synthetic(9_000.0);
    let bytes_a = gen_a.to_bytes();
    let bytes_b = gen_b.to_bytes();

    let probe: Vec<Vec<u8>> = (0..50u8)
        .map(|i| vec![b'a' + (i % 4), b'a' + ((i / 4) % 4), b'a' + ((i / 16) % 4)])
        .collect();
    let refs: Vec<&[u8]> = probe.iter().map(|p| p.as_slice()).collect();
    let expect_a: Vec<u64> = gen_a.query_batch(&refs).iter().map(|v| v.to_bits()).collect();
    let expect_b: Vec<u64> = gen_b.query_batch(&refs).iter().map(|v| v.to_bits()).collect();
    assert_ne!(expect_a, expect_b);

    let manager = Arc::new(ShardManager::new());
    manager.install(0, gen_a.clone(), bytes_a.len());
    let handle = spawn_daemon(Arc::clone(&manager));
    let addr = handle.addr();

    let stop = AtomicBool::new(false);
    let swaps = 40usize;
    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..2 {
            readers.push(scope.spawn(|| {
                let mut client = Client::connect(addr).expect("reader connects");
                let mut batches = 0usize;
                let mut saw = [false, false];
                while !stop.load(Ordering::Relaxed) {
                    let served = client.query_batch(0, &refs).expect("batch answered");
                    let bits: Vec<u64> = served.iter().map(|v| v.to_bits()).collect();
                    if bits == expect_a {
                        saw[0] = true;
                    } else if bits == expect_b {
                        saw[1] = true;
                    } else {
                        panic!("batch blends epochs: {bits:?}");
                    }
                    batches += 1;
                }
                (batches, saw)
            }));
        }
        // Swapper: alternate generations over a separate admin connection.
        let mut admin = Client::connect(addr).expect("admin connects");
        let mut last_epoch = 0;
        for i in 0..swaps {
            let bytes = if i % 2 == 0 { &bytes_b } else { &bytes_a };
            let epoch = admin.load_snapshot(0, bytes).expect("hot swap succeeds");
            assert!(epoch > last_epoch, "epochs strictly increase");
            last_epoch = epoch;
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        stop.store(true, Ordering::Relaxed);
        let mut total_batches = 0usize;
        let mut saw_any = [false, false];
        for r in readers {
            let (batches, saw) = r.join().expect("reader thread clean");
            total_batches += batches;
            saw_any[0] |= saw[0];
            saw_any[1] |= saw[1];
        }
        // Readers made progress during the swap storm, and traffic really
        // exercised both generations (not vacuously pinned to one).
        assert!(total_batches >= swaps, "readers starved: {total_batches} batches");
        assert!(saw_any[0] && saw_any[1], "swap never took effect under traffic: {saw_any:?}");
    });
    handle.shutdown();
}

#[test]
fn cache_hits_are_bit_identical_and_epoch_keyed() {
    let gen_a = synthetic(10.0);
    let gen_b = synthetic(20.0);
    let manager = Arc::new(ShardManager::new());
    manager.install(0, gen_a.clone(), 0);
    let handle = spawn_daemon(Arc::clone(&manager));
    let mut client = Client::connect(handle.addr()).expect("client connects");

    let pattern = b"aba";
    // Cold, then hot: same bits, and the hit counter moves.
    let cold = client.query(0, pattern).expect("cold query");
    let before = client.stats().expect("stats").cache;
    let hot = client.query(0, pattern).expect("hot query");
    let after = client.stats().expect("stats").cache;
    assert_eq!(hot.to_bits(), cold.to_bits(), "cache hit must be bit-identical");
    assert_eq!(cold.to_bits(), gen_a.query(pattern).to_bits());
    assert!(after.hits > before.hits, "second query must hit the cache");

    // Hot swap: the same pattern now answers from the new epoch — stale
    // cache entries are unreachable by key construction.
    client.load_snapshot(0, &gen_b.to_bytes()).expect("hot swap");
    let swapped = client.query(0, pattern).expect("post-swap query");
    assert_eq!(swapped.to_bits(), gen_b.query(pattern).to_bits());
    assert_ne!(swapped.to_bits(), cold.to_bits(), "old epoch's cached value must not leak");
    handle.shutdown();
}

#[test]
fn stats_surface_per_shard_sizes_and_utility_bounds() {
    let (frozen_a, _) = dp_built(34);
    let gen_b = synthetic(5.0);
    let bytes_a = frozen_a.to_bytes();
    let bytes_b = gen_b.to_bytes();

    let manager = Arc::new(ShardManager::new());
    let handle = spawn_daemon(Arc::clone(&manager));
    let mut client = Client::connect(handle.addr()).expect("client connects");
    client.load_snapshot(2, &bytes_a).expect("shard 2 loads");
    client.load_snapshot(7, &bytes_b).expect("shard 7 loads");

    let stats = client.stats().expect("stats answered");
    assert_eq!(stats.cache.capacity, ServerConfig::default().cache_capacity as u64);
    assert_eq!(stats.shards.len(), 2);
    assert_eq!(stats.shards[0].shard_id, 2, "shards come back ascending");
    assert_eq!(stats.shards[1].shard_id, 7);

    let s = &stats.shards[0];
    assert_eq!(s.node_count, frozen_a.node_count() as u64);
    assert_eq!(s.serialized_len, bytes_a.len() as u64);
    assert_eq!(s.alpha, frozen_a.alpha());
    assert_eq!(s.alpha_counts, frozen_a.alpha_counts());
    assert_eq!(s.alpha_absent, frozen_a.alpha_absent());
    assert_eq!(s.epsilon, frozen_a.privacy().epsilon);
    assert_eq!(s.delta, frozen_a.privacy().delta);
    let (n_docs, max_len) = frozen_a.db_params();
    assert_eq!((s.n_docs, s.max_len), (n_docs as u64, max_len as u64));

    let s = &stats.shards[1];
    assert_eq!(s.node_count, gen_b.node_count() as u64);
    assert_eq!(s.serialized_len, bytes_b.len() as u64);
    assert_eq!(s.epsilon, 2.0);
    handle.shutdown();
}

/// Shipping a v2 uncompressed snapshot over the wire installs it
/// *borrowed*: the resident synopsis answers straight out of the received
/// frame buffer (zero per-array copies), bit-identically to a local
/// decode, and hot-swaps back to owned v1 still work on the same shard.
#[test]
fn v2_snapshots_serve_borrowed_over_the_wire() {
    let (frozen, patterns) = dp_built(35);
    let v2 = frozen.to_bytes_v2(false);
    let manager = Arc::new(ShardManager::new());
    let handle = spawn_daemon(Arc::clone(&manager));
    let mut client = Client::connect(handle.addr()).expect("client connects");

    client.load_snapshot(1, &v2).expect("v2 snapshot loads");
    let resident = manager.snapshot(1).expect("shard resident");
    assert!(resident.synopsis.is_borrowed(), "wire-shipped uncompressed v2 must serve borrowed");
    assert_eq!(resident.serialized_len, v2.len());
    for p in &patterns {
        let served = client.query(1, p).expect("query answered");
        assert_eq!(served.to_bits(), frozen.query(p).to_bits(), "pattern {p:?}");
    }

    // Swapping the same shard back to a v1 snapshot lands owned.
    client.load_snapshot(1, &frozen.to_bytes()).expect("v1 snapshot loads");
    assert!(!manager.snapshot(1).unwrap().synopsis.is_borrowed());
    assert!(client.query(1, b"").expect("query answered").is_finite());
    handle.shutdown();
}

/// Regression: a daemon bound to the wildcard address must still shut
/// down promptly. `shutdown` wakes the blocked acceptor with a loopback
/// connection — connecting to the *bound* `0.0.0.0` address is not
/// reliably routable, which used to leave the join hanging on platforms
/// that refuse such connects.
#[test]
fn shutdown_wakes_a_wildcard_bound_acceptor() {
    let (frozen, _) = dp_built(36);
    let manager = Arc::new(ShardManager::new());
    let config = ServerConfig {
        addr: "0.0.0.0:0".to_string(),
        workers: 2,
        cache_capacity: 64,
        ..ServerConfig::default()
    };
    let handle = Server::spawn(config, Arc::clone(&manager)).expect("daemon binds wildcard");
    assert!(handle.addr().ip().is_unspecified(), "test must exercise a wildcard bind");

    // The daemon is reachable via loopback on the bound port.
    let mut client = Client::connect(("127.0.0.1", handle.addr().port())).expect("client connects");
    client.load_snapshot(0, &frozen.to_bytes()).expect("snapshot loads");
    assert!(client.query(0, b"").expect("query answered").is_finite());
    drop(client);

    // Bounded shutdown: the join must complete without an organic wake.
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        handle.shutdown();
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(std::time::Duration::from_secs(10))
        .expect("wildcard-bound daemon failed to shut down within 10s");
}

/// Regression: a corrupt length prefix in the *first* frame used to be
/// silently dropped (`break 'conn` with no response) while the same
/// corruption later in the stream was answered with an error frame. Both
/// cores now follow one contract for corruption anywhere in the stream:
/// error frame back, flush, then close.
#[test]
fn garbage_first_frame_gets_an_error_frame_then_close() {
    use dp_substring_counting::serve::wire::decode_response;
    use std::io::{Read, Write};

    for core in [CoreKind::Readiness, CoreKind::ThreadPool] {
        let manager = Arc::new(ShardManager::new());
        let config = ServerConfig { core, ..ServerConfig::default() };
        let handle = Server::spawn(config, manager).expect("daemon binds");

        let mut raw = std::net::TcpStream::connect(handle.addr()).expect("raw connect");
        raw.set_read_timeout(Some(std::time::Duration::from_secs(10))).unwrap();
        // A length prefix far beyond MAX_FRAME_LEN: unrecoverable.
        raw.write_all(&[0xFF; 16]).expect("garbage written");

        let mut len = [0u8; 4];
        raw.read_exact(&mut len).expect("an error frame must come back ({core:?})");
        let body_len = u32::from_le_bytes(len) as usize;
        let mut body = vec![0u8; body_len];
        raw.read_exact(&mut body).expect("error frame body");
        match decode_response(&body).expect("well-formed response frame") {
            Response::Error { message } => {
                assert!(!message.is_empty(), "error carries a reason ({core:?})")
            }
            other => panic!("expected an error frame, got {other:?} ({core:?})"),
        }
        // …and then the server closes the unrecoverable stream.
        let mut rest = Vec::new();
        let n = raw.read_to_end(&mut rest).expect("clean EOF after the error frame");
        assert_eq!(n, 0, "no bytes after the error frame ({core:?})");

        // The daemon itself is unharmed: a fresh client still gets served.
        let mut client = Client::connect(handle.addr()).expect("fresh client connects");
        let err = client.query(9, b"x").expect_err("unknown shard errors");
        assert!(err.to_string().contains("unknown shard"), "daemon still serving ({core:?})");
        handle.shutdown();
    }
}

/// The wire `Shutdown` gate: the default loopback-only policy admits a
/// local client, and `ShutdownPolicy::Deny` refuses with a typed error
/// while the daemon keeps serving (only the handle can stop it).
#[test]
fn shutdown_gate_admits_by_policy_and_refuses_with_an_error() {
    for core in [CoreKind::Readiness, CoreKind::ThreadPool] {
        // Accept path: default policy, loopback peer → daemon stops.
        let manager = Arc::new(ShardManager::new());
        let config = ServerConfig { core, ..ServerConfig::default() };
        let handle = Server::spawn(config, manager).expect("daemon binds");
        let client = Client::connect(handle.addr()).expect("client connects");
        client.shutdown_server().expect("loopback peer may shut the daemon down");
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            handle.shutdown();
            let _ = done_tx.send(());
        });
        done_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("daemon joins promptly after a wire shutdown");

        // Reject path: Deny policy — even loopback is refused, the
        // connection stays usable, and the daemon keeps serving.
        let manager = Arc::new(ShardManager::new());
        let config =
            ServerConfig { core, shutdown_policy: ShutdownPolicy::Deny, ..ServerConfig::default() };
        let handle = Server::spawn(config, manager).expect("daemon binds");
        let mut client = Client::connect(handle.addr()).expect("client connects");
        match client.call(&Request::Shutdown).expect("refusal is a response, not a hangup") {
            Response::Error { message } => {
                assert!(message.contains("shutdown refused"), "got: {message}")
            }
            other => panic!("expected a refusal, got {other:?}"),
        }
        // Same connection, next request: still served.
        let err = client.query(3, b"x").expect_err("unknown shard errors");
        assert!(err.to_string().contains("unknown shard 3"), "daemon survived ({core:?})");
        handle.shutdown();
    }
}

/// The readiness core's reason to exist: far more simultaneous
/// connections than the thread-pool core has workers, all held open at
/// once, every answer bit-identical to the local oracle — and shutdown
/// still joins promptly with hundreds of connections live.
#[test]
fn hundreds_of_concurrent_connections_serve_bit_identically() {
    const CONNS: usize = 256;
    let gen = synthetic(42.0);
    let probe: Vec<Vec<u8>> = (0..50u8)
        .map(|i| vec![b'a' + (i % 4), b'a' + ((i / 4) % 4), b'a' + ((i / 16) % 4)])
        .collect();
    let refs: Vec<&[u8]> = probe.iter().map(|p| p.as_slice()).collect();
    let expect: Vec<u64> = gen.query_batch(&refs).iter().map(|v| v.to_bits()).collect();

    let manager = Arc::new(ShardManager::new());
    manager.install(0, gen, 0);
    // workers=2 ≪ CONNS: only the event loop can serve this shape.
    let config = ServerConfig { workers: 2, ..ServerConfig::default() };
    let handle = Server::spawn(config, manager).expect("daemon binds");
    let addr = handle.addr();

    let barrier = std::sync::Barrier::new(CONNS);
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for _ in 0..CONNS {
            joins.push(scope.spawn(|| {
                let mut client = Client::connect(addr).expect("client connects");
                // Everyone connects before anyone queries: all CONNS
                // sockets are simultaneously open at the server.
                barrier.wait();
                let served = client.query_batch(0, &refs).expect("batch answered");
                let bits: Vec<u64> = served.iter().map(|v| v.to_bits()).collect();
                assert_eq!(bits, expect, "served bits must match the local oracle");
                client
            }));
        }
        // Keep every connection alive until all have been answered.
        let clients: Vec<Client> =
            joins.into_iter().map(|j| j.join().expect("client ok")).collect();
        drop(clients);
    });

    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        handle.shutdown();
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(std::time::Duration::from_secs(10))
        .expect("shutdown joins promptly after a 256-connection storm");
}

/// The `Metrics` op end to end: counters reconcile exactly with what
/// this client did, latency percentiles and qps are live, the cache hit
/// rate reflects the repeated pattern, and per-shard records carry the
/// installed epoch and serialized size.
#[test]
fn metrics_reconcile_with_client_side_counts() {
    let gen = synthetic(7.0);
    let bytes = gen.to_bytes();
    let manager = Arc::new(ShardManager::new());
    let handle = Server::spawn(ServerConfig::default(), manager).expect("daemon binds");
    let mut client = Client::connect(handle.addr()).expect("client connects");

    let epoch = client.load_snapshot(4, &bytes).expect("snapshot loads");
    for _ in 0..5 {
        client.query(4, b"aaa").expect("query answered"); // 1 miss + 4 hits
    }
    let refs: Vec<&[u8]> = vec![b"aba", b"baa", b"abc"];
    client.query_batch(4, &refs).expect("batch answered");
    client.contains(4, b"aba").expect("contains answered");
    client.stats().expect("stats answered");
    let _ = client.query(77, b"zz").expect_err("unknown shard errors");

    let report = client.metrics().expect("metrics answered");
    // Op counters: exactly what this client sent (plus the error).
    assert_eq!(report.ops.query, 6, "5 served + 1 unknown-shard error");
    assert_eq!(report.ops.query_batch, 1);
    assert_eq!(report.ops.contains, 1);
    assert_eq!(report.ops.stats, 1);
    assert_eq!(report.ops.load_snapshot, 1);
    assert_eq!(report.ops.metrics, 0, "a report snapshots counters before its own op lands");
    assert_eq!(report.ops.shutdown, 0);
    assert_eq!(report.ops.rollback, 0);
    assert_eq!(report.ops.errors, 1);
    // Degradation counters: a healthy unstressed daemon never trips any.
    assert_eq!(report.overloaded_total, 0);
    assert_eq!(report.idle_reaped_total, 0);
    assert_eq!(report.deadline_evicted_total, 0);
    assert_eq!(report.recoveries_total, 0);
    assert_eq!(report.rollbacks_total, 0);
    // Served work: 5 single + 3 batched + 1 contains lookups (the failed
    // query adds 0).
    assert_eq!(report.patterns_total, 9);
    assert_eq!(report.conns_accepted, 1);
    assert_eq!(report.conns_open, 1);
    assert!(report.uptime_ns > 0);
    assert!(report.qps > 0.0, "patterns served over nonzero uptime");
    assert!(report.latency_p50_ns > 0.0 && report.latency_p99_ns >= report.latency_p50_ns);
    // Cache: "aaa" hit 4 times out of 9 total lookups (5+3+1... the
    // contains path does not touch the cache): 4 hits / 8 lookups.
    assert_eq!(report.cache.hits, 4);
    assert_eq!(report.cache.misses, 4);
    assert!((report.cache_hit_rate - 0.5).abs() < 1e-12, "rate = {}", report.cache_hit_rate);
    // Per-shard identity triple.
    assert_eq!(report.shards.len(), 1);
    assert_eq!(report.shards[0].shard_id, 4);
    assert_eq!(report.shards[0].epoch, epoch);
    assert_eq!(report.shards[0].serialized_len, bytes.len() as u64);
    // A second report sees the first Metrics op (and nothing else new).
    let report2 = client.metrics().expect("second metrics answered");
    assert_eq!(report2.ops.metrics, 1);
    assert_eq!(report2.patterns_total, 9, "Metrics ops serve no patterns");
    handle.shutdown();
}

/// Write backpressure on the readiness core: with a deliberately tiny
/// outbound high-water mark, a large pipelined burst (answers queue
/// faster than the client drains) still comes back complete, in order,
/// and bit-identical — reading pauses instead of buffering unboundedly.
#[test]
fn tiny_write_budget_backpressure_preserves_order_and_answers() {
    let gen = synthetic(3.0);
    let manager = Arc::new(ShardManager::new());
    manager.install(0, gen.clone(), 0);
    let config = ServerConfig { write_high_water: 2048, ..ServerConfig::default() };
    let handle = Server::spawn(config, manager).expect("daemon binds");
    let mut client = Client::connect(handle.addr()).expect("client connects");

    let probe: Vec<Vec<u8>> = (0..2000u32)
        .map(|i| {
            vec![b'a' + (i % 4) as u8, b'a' + ((i / 4) % 4) as u8, b'a' + ((i / 16) % 4) as u8]
        })
        .collect();
    let requests: Vec<Request> =
        probe.iter().map(|p| Request::Query { shard: 0, pattern: p.clone() }).collect();
    let responses = client.pipeline(&requests).expect("burst survives backpressure");
    assert_eq!(responses.len(), requests.len());
    for (resp, p) in responses.iter().zip(&probe) {
        match resp {
            Response::Query { value } => {
                assert_eq!(value.to_bits(), gen.query(p).to_bits(), "pattern {p:?}")
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    handle.shutdown();
}

/// Reads one length-prefixed response frame (then EOF) from a raw
/// socket the server shed at admission. The probe never writes, so the
/// `Overloaded` frame cannot be destroyed by a reset racing unread
/// request bytes — the shed count observed here is exact.
fn read_shed_frame(addr: std::net::SocketAddr) -> Response {
    let mut s = TcpStream::connect(addr).expect("TCP connect still succeeds");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut buf = Vec::new();
    let mut tmp = [0u8; 256];
    loop {
        match s.read(&mut tmp) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(e) => panic!("shed connection read failed: {e}"),
        }
    }
    assert!(buf.len() >= 4, "shed connection must carry a frame, got {} bytes", buf.len());
    let body_len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    assert_eq!(buf.len(), 4 + body_len, "exactly one frame then close");
    decode_response(&buf[4..]).expect("well-formed response frame")
}

/// The admission bound sheds excess connections with a retryable
/// `Overloaded` frame while every admitted connection keeps answering
/// bit-identically, and `overloaded_total` reconciles exactly with the
/// observed sheds — on both cores.
#[test]
fn admission_bound_sheds_overloaded_and_healthy_conns_stay_correct() {
    let gen = synthetic(11.0);
    let probe: Vec<Vec<u8>> = (0..50u8)
        .map(|i| vec![b'a' + (i % 4), b'a' + ((i / 4) % 4), b'a' + ((i / 16) % 4)])
        .collect();
    let refs: Vec<&[u8]> = probe.iter().map(|p| p.as_slice()).collect();
    let expect: Vec<u64> = gen.query_batch(&refs).iter().map(|v| v.to_bits()).collect();

    for core in [CoreKind::Readiness, CoreKind::ThreadPool] {
        let manager = Arc::new(ShardManager::new());
        manager.install(0, gen.clone(), 0);
        let config = ServerConfig { core, workers: 2, max_conns: 2, ..ServerConfig::default() };
        let handle = Server::spawn(config, manager).expect("daemon binds");

        // Fill the admission bound and prove both slots are live.
        let mut healthy: Vec<Client> =
            (0..2).map(|_| Client::connect(handle.addr()).expect("admitted connection")).collect();
        for c in healthy.iter_mut() {
            c.query(0, b"aaa").expect("admitted connection answers");
        }

        // Five raw probes: each shed at accept with a typed frame.
        for i in 0..5 {
            let resp = read_shed_frame(handle.addr());
            assert!(
                matches!(resp, Response::Overloaded),
                "shed {i} got {resp:?} instead of Overloaded ({core:?})"
            );
        }
        // The typed client surfaces the shed as the retryable error (the
        // reset race can also surface as Io; both are retryable).
        let mut extra = Client::connect(handle.addr()).expect("TCP connect succeeds");
        let err = extra.query(0, b"aaa").expect_err("6th conn is shed");
        assert!(
            matches!(err, ClientError::Overloaded | ClientError::Io(_)),
            "got: {err} ({core:?})"
        );
        drop(extra);

        // Healthy connections never noticed: answers stay bit-identical,
        // and the counter reconciles with exactly 6 observed sheds.
        for c in healthy.iter_mut() {
            let served: Vec<u64> =
                c.query_batch(0, &refs).unwrap().iter().map(|v| v.to_bits()).collect();
            assert_eq!(served, expect, "healthy conn degraded under overload ({core:?})");
        }
        let report = healthy[0].metrics().expect("metrics");
        assert_eq!(report.overloaded_total, 6, "shed count reconciles ({core:?})");
        assert_eq!(report.conns_open, 2, "only admitted conns counted ({core:?})");

        // Freeing a slot lets a retrying client in.
        drop(healthy.pop());
        let policy = RetryPolicy {
            max_retries: 10,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(200),
            ..RetryPolicy::default()
        };
        let mut late = Client::connect(handle.addr()).expect("TCP connect succeeds");
        let v =
            late.query_with_retry(0, &probe[7], &policy).expect("retry admits once capacity frees");
        assert_eq!(v.to_bits(), gen.query(&probe[7]).to_bits(), "({core:?})");
        handle.shutdown();
    }
}

/// A slow-loris connection (partial frame, then silence) is evicted at
/// the read deadline while a healthy connection keeps answering, and
/// `deadline_evicted_total` reconciles exactly — on both cores.
#[test]
fn slow_loris_is_evicted_while_healthy_conns_keep_answering() {
    let gen = synthetic(12.0);
    for core in [CoreKind::Readiness, CoreKind::ThreadPool] {
        let manager = Arc::new(ShardManager::new());
        manager.install(0, gen.clone(), 0);
        let config = ServerConfig {
            core,
            workers: 3,
            read_deadline: Some(Duration::from_millis(200)),
            ..ServerConfig::default()
        };
        let handle = Server::spawn(config, manager).expect("daemon binds");

        // The loris: two bytes of a frame header, then nothing.
        let mut loris = TcpStream::connect(handle.addr()).expect("loris connects");
        loris.write_all(b"DP").expect("partial frame sent");

        // Healthy traffic throughout the loris's stall window.
        let mut client = Client::connect(handle.addr()).expect("client connects");
        let start = Instant::now();
        while start.elapsed() < Duration::from_millis(800) {
            let v = client.query(0, b"abc").expect("healthy conn keeps answering");
            assert_eq!(v.to_bits(), gen.query(b"abc").to_bits(), "({core:?})");
            std::thread::sleep(Duration::from_millis(25));
        }

        // The loris must be gone: its socket reads EOF (or a reset).
        loris.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut one = [0u8; 16];
        match loris.read(&mut one) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("loris read {n} unexpected bytes ({core:?})"),
        }
        let report = client.metrics().expect("metrics");
        assert_eq!(report.deadline_evicted_total, 1, "exactly the loris evicted ({core:?})");
        assert_eq!(report.idle_reaped_total, 0, "no idle reaping configured ({core:?})");
        handle.shutdown();
    }
}

/// Idle connections are reaped at `idle_timeout` while connections with
/// in-window traffic survive, and `idle_reaped_total` reconciles — on
/// both cores.
#[test]
fn idle_connections_are_reaped_but_active_ones_survive() {
    let gen = synthetic(13.0);
    for core in [CoreKind::Readiness, CoreKind::ThreadPool] {
        let manager = Arc::new(ShardManager::new());
        manager.install(0, gen.clone(), 0);
        let config = ServerConfig {
            core,
            workers: 3,
            idle_timeout: Some(Duration::from_millis(200)),
            ..ServerConfig::default()
        };
        let handle = Server::spawn(config, manager).expect("daemon binds");

        let mut idle = Client::connect(handle.addr()).expect("idle client connects");
        idle.query(0, b"abc").expect("one query, then silence");
        let mut active = Client::connect(handle.addr()).expect("active client connects");

        // 600 ms of in-window traffic from the active client; the idle
        // one stays quiet well past the timeout.
        for _ in 0..12 {
            active.query(0, b"abc").expect("in-window traffic survives");
            std::thread::sleep(Duration::from_millis(50));
        }

        let err = idle.query(0, b"abc").expect_err("idle conn was reaped");
        assert!(matches!(err, ClientError::Io(_)), "got: {err} ({core:?})");
        let report = active.metrics().expect("metrics");
        assert_eq!(report.idle_reaped_total, 1, "exactly the idle conn reaped ({core:?})");
        assert_eq!(report.deadline_evicted_total, 0, "no deadline configured ({core:?})");
        handle.shutdown();
    }
}

/// A `StoreIo` whose payload write blocks on a condvar gate, so a test
/// can hold an install mid-persist and prove the rest of the daemon
/// keeps serving.
#[derive(Debug)]
struct GatedIo {
    inner: RealIo,
    gate: Arc<(Mutex<(bool, bool)>, Condvar)>, // (blocked, entered)
}

impl StoreIo for GatedIo {
    fn write_file(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        let (lock, cv) = &*self.gate;
        let mut st = lock.lock().unwrap();
        st.1 = true;
        cv.notify_all();
        while st.0 {
            st = cv.wait(st).unwrap();
        }
        drop(st);
        self.inner.write_file(path, bytes)
    }
    fn append_file(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        self.inner.append_file(path, bytes)
    }
    fn sync_file(&self, path: &Path) -> std::io::Result<()> {
        self.inner.sync_file(path)
    }
    fn sync_dir(&self, path: &Path) -> std::io::Result<()> {
        self.inner.sync_dir(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        self.inner.rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        self.inner.remove_file(path)
    }
    fn read_file(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        self.inner.read_file(path)
    }
    fn list_dir(&self, path: &Path) -> std::io::Result<Vec<PathBuf>> {
        self.inner.list_dir(path)
    }
}

/// The satellite regression: a `LoadSnapshot` stuck deep inside persist
/// must not stall other connections' queries. On the readiness core the
/// install runs off the event-loop thread; on the thread-pool core it
/// pins only its own worker. Queries from a second connection answer
/// within a strict timeout for the whole time the install is held, and
/// the install completes once released.
#[test]
fn queries_stay_responsive_while_an_install_is_stuck_in_persist() {
    let old_gen = synthetic(5.0);
    let new_gen = synthetic(99.0);
    let new_bytes = new_gen.to_bytes();
    for core in [CoreKind::Readiness, CoreKind::ThreadPool] {
        let dir = std::env::temp_dir()
            .join(format!("dpsc-gated-install-{}-{core:?}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let gate = Arc::new((Mutex::new((true, false)), Condvar::new()));
        let store = dp_substring_counting::serve::SnapshotStore::open_with(
            &dir,
            4,
            Box::new(GatedIo { inner: RealIo, gate: Arc::clone(&gate) }),
        )
        .expect("fresh store opens without touching the gate");
        let manager = Arc::new(ShardManager::new());
        manager.install(0, old_gen.clone(), 0);
        let config = ServerConfig {
            core,
            workers: 3,
            store: Some(Arc::new(store)),
            ..ServerConfig::default()
        };
        let handle = Server::spawn(config, manager).expect("daemon binds");
        let addr = handle.addr();

        let install_bytes = new_bytes.clone();
        let installer = std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("installer connects");
            c.load_snapshot(1, &install_bytes)
        });

        // Wait until the install is provably stuck inside the persist.
        {
            let (lock, cv) = &*gate;
            let mut st = lock.lock().unwrap();
            while !st.1 {
                let (next, timeout) = cv.wait_timeout(st, Duration::from_secs(10)).unwrap();
                st = next;
                assert!(!timeout.timed_out(), "install never reached the store ({core:?})");
            }
        }

        // While held: a second connection's queries answer promptly and
        // bit-identically to the resident epoch.
        let mut client = Client::connect_with(
            addr,
            ClientConfig { io_timeout: Some(Duration::from_secs(2)), ..ClientConfig::default() },
        )
        .expect("query client connects");
        for _ in 0..10 {
            let v = client.query(0, b"abc").expect("queries must not stall behind a stuck install");
            assert_eq!(v.to_bits(), old_gen.query(b"abc").to_bits(), "({core:?})");
        }

        // Release the gate: the install completes with a durable epoch.
        {
            let (lock, cv) = &*gate;
            lock.lock().unwrap().0 = false;
            cv.notify_all();
        }
        let epoch =
            installer.join().expect("installer thread lives").expect("released install succeeds");
        assert_eq!(epoch, 1, "first durable epoch ({core:?})");
        let v = client.query(1, b"abc").expect("new shard serves");
        assert_eq!(v.to_bits(), new_gen.query(b"abc").to_bits(), "({core:?})");
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// `ClientConfig::io_timeout` bounds calls against a server that accepts
/// and then never responds — the call errors instead of hanging forever.
#[test]
fn client_io_timeout_fires_on_a_silent_socket() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("silent listener binds");
    let addr = listener.local_addr().unwrap();
    let silent = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().expect("accepts");
        // Read (and discard) whatever arrives, never answer; exit on EOF.
        let mut buf = [0u8; 4096];
        while matches!(s.read(&mut buf), Ok(n) if n > 0) {}
    });

    let config = ClientConfig {
        connect_timeout: Some(Duration::from_secs(2)),
        io_timeout: Some(Duration::from_millis(200)),
    };
    let mut client = Client::connect_with(addr, config).expect("connects");
    let start = Instant::now();
    let err = client.query(0, b"abc").expect_err("silent server must not hang the client");
    match &err {
        ClientError::Io(e) => assert!(
            matches!(e.kind(), std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock),
            "got io error kind {:?}",
            e.kind()
        ),
        other => panic!("expected Io timeout, got {other}"),
    }
    assert!(start.elapsed() < Duration::from_secs(3), "timeout fired late");
    drop(client);
    silent.join().unwrap();
}

/// `call_with_retry` reconnects after `Overloaded` sheds and lands the
/// correct answer once capacity frees up — the client-side half of the
/// overload contract.
#[test]
fn retry_policy_reconnects_after_overload_and_answers_correctly() {
    let gen = synthetic(21.0);
    let manager = Arc::new(ShardManager::new());
    manager.install(0, gen.clone(), 0);
    let config = ServerConfig { max_conns: 1, ..ServerConfig::default() };
    let handle = Server::spawn(config, manager).expect("daemon binds");
    let addr = handle.addr();

    // One hog holds the only slot.
    let mut hog = Client::connect(addr).expect("hog connects");
    hog.query(0, b"aaa").expect("hog is admitted");

    let worker = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("TCP connect succeeds even when shed");
        let policy = RetryPolicy {
            max_retries: 12,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(200),
            ..RetryPolicy::default()
        };
        c.query_with_retry(0, b"bbb", &policy)
    });

    std::thread::sleep(Duration::from_millis(250));
    drop(hog); // capacity frees mid-retry
    let v = worker.join().expect("retry thread lives").expect("retry succeeds once the slot frees");
    assert_eq!(v.to_bits(), gen.query(b"bbb").to_bits(), "retried answer is bit-identical");
    handle.shutdown();
}

/// The `Trace` wire op round-trips on both cores: the drained events are
/// dense and ordered, frame events carry the connection id, shard,
/// pattern fingerprint, and opcode that this client's traffic implies,
/// the drain never sees its own frame, and a second drain proves the
/// ring is non-destructive.
#[test]
fn trace_op_round_trips_with_exact_frame_events() {
    use dp_substring_counting::private_count::codec::fnv1a;
    use dp_substring_counting::serve::OpKind;

    let gen = synthetic(17.0);
    for core in [CoreKind::Readiness, CoreKind::ThreadPool] {
        let manager = Arc::new(ShardManager::new());
        manager.install(0, gen.clone(), 0);
        let config = ServerConfig { core, ..ServerConfig::default() };
        let handle = Server::spawn(config, manager).expect("daemon binds");
        let mut client = Client::connect(handle.addr()).expect("client connects");

        client.query(0, b"abc").expect("query answered");
        client.contains(0, b"ab").expect("contains answered");
        let _ = client.query(77, b"zz").expect_err("unknown shard errors");

        let events = client.trace(1024).expect("trace drains");
        assert!(!events.is_empty(), "default config records events ({core:?})");
        for w in events.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1, "snapshot is dense and ordered ({core:?})");
            assert!(w[1].ts_ns >= w[0].ts_ns, "timestamps are monotone ({core:?})");
        }

        // Exactly one admitted connection; its id threads through every
        // frame event below.
        let accepted: Vec<&TraceEvent> =
            events.iter().filter(|e| e.kind == TraceKind::ConnAccepted).collect();
        assert_eq!(accepted.len(), 1, "({core:?})");
        let conn = accepted[0].conn;
        assert!(conn > 0, "connection ids are dense from 1 ({core:?})");

        let q = events
            .iter()
            .find(|e| {
                e.kind == TraceKind::FrameAnswered && e.detail == OpKind::Query.wire_code() as u64
            })
            .expect("query frame traced");
        assert_eq!(q.conn, conn, "({core:?})");
        assert_eq!(q.shard, 0, "({core:?})");
        assert_eq!(q.fingerprint, fnv1a(b"abc"), "fingerprint, never bytes ({core:?})");
        assert_eq!(q.len, 3, "length, never content ({core:?})");
        assert!(q.dur_ns > 0, "service latency recorded ({core:?})");

        let c = events
            .iter()
            .find(|e| {
                e.kind == TraceKind::FrameAnswered
                    && e.detail == OpKind::Contains.wire_code() as u64
            })
            .expect("contains frame traced");
        assert_eq!((c.fingerprint, c.len), (fnv1a(b"ab"), 2), "({core:?})");

        // The decoded-request error: a FrameError carrying its opcode.
        let errs: Vec<&TraceEvent> =
            events.iter().filter(|e| e.kind == TraceKind::FrameError).collect();
        assert_eq!(errs.len(), 1, "({core:?})");
        assert_eq!(errs[0].detail, OpKind::Query.wire_code() as u64, "({core:?})");
        assert_eq!(errs[0].conn, conn, "({core:?})");

        // A drain snapshots the ring before its own frame lands…
        let own = |evs: &[TraceEvent]| {
            evs.iter()
                .filter(|e| {
                    e.kind == TraceKind::FrameAnswered
                        && e.detail == OpKind::Trace.wire_code() as u64
                })
                .count()
        };
        assert_eq!(own(&events), 0, "a drain never sees itself ({core:?})");
        // …and is non-destructive: a second drain re-reads everything
        // plus exactly the first drain's own frame.
        let again = client.trace(1024).expect("second drain");
        let again_seqs: Vec<u64> = again.iter().map(|e| e.seq).collect();
        assert!(
            events.iter().all(|e| again_seqs.contains(&e.seq)),
            "drains are non-destructive ({core:?})"
        );
        assert_eq!(own(&again), 1, "({core:?})");

        // Counters reconcile with the drained events.
        let report = client.metrics().expect("metrics");
        assert_eq!(report.ops.errors, errs.len() as u64, "({core:?})");
        assert_eq!(report.ops.trace, 2, "({core:?})");
        assert!(report.trace_events_total >= again.len() as u64, "({core:?})");
        assert_eq!(report.trace_overwritten_total, 0, "nothing wrapped ({core:?})");
        assert!(report.op_latency.query.p50_ns > 0.0, "per-op p50 live ({core:?})");
        assert!(report.op_latency.query.p99_ns >= report.op_latency.query.p50_ns, "({core:?})");
        assert!(report.op_latency.trace.p99_ns > 0.0, "trace op has its own histogram ({core:?})");
        handle.shutdown();
    }
}

/// Adversarial load reconciles counters with trace events exactly, on
/// both cores: an undecodable frame (one error + one `FrameError` with
/// no opcode), admission sheds (`overloaded_total` == `ConnShed`
/// events), and a slow-loris eviction (`deadline_evicted_total` ==
/// `ConnDeadlineEvicted` events) — while accepted/closed connection
/// counts match the lifecycle events one for one.
#[test]
fn adversarial_load_reconciles_counters_with_trace_events() {
    let gen = synthetic(23.0);
    for core in [CoreKind::Readiness, CoreKind::ThreadPool] {
        let manager = Arc::new(ShardManager::new());
        manager.install(0, gen.clone(), 0);
        let config = ServerConfig {
            core,
            workers: 2,
            max_conns: 2,
            read_deadline: Some(Duration::from_millis(200)),
            ..ServerConfig::default()
        };
        let handle = Server::spawn(config, manager).expect("daemon binds");

        // A healthy connection that survives the whole storm.
        let mut client = Client::connect(handle.addr()).expect("client connects");
        client.query(0, b"abc").expect("healthy conn answers");

        // An undecodable frame: error frame back, then close.
        {
            let mut raw = TcpStream::connect(handle.addr()).expect("raw connect");
            raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            raw.write_all(&[0xFF; 16]).expect("garbage written");
            let mut junk = Vec::new();
            raw.read_to_end(&mut junk).expect("error frame then EOF");
            assert!(junk.len() >= 4, "an error frame came back ({core:?})");
        }
        // Give the close a moment to release its admission slot.
        std::thread::sleep(Duration::from_millis(100));

        // A loris takes the freed slot and stalls mid-frame.
        let mut loris = TcpStream::connect(handle.addr()).expect("loris connects");
        loris.write_all(b"DP").expect("partial frame sent");
        std::thread::sleep(Duration::from_millis(50));

        // Three probes shed at the (now full) admission bound.
        for i in 0..3 {
            let resp = read_shed_frame(handle.addr());
            assert!(matches!(resp, Response::Overloaded), "shed {i} got {resp:?} ({core:?})");
        }

        // Healthy traffic past the loris's deadline.
        let start = Instant::now();
        while start.elapsed() < Duration::from_millis(800) {
            client.query(0, b"abc").expect("healthy conn keeps answering");
            std::thread::sleep(Duration::from_millis(25));
        }
        loris.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut one = [0u8; 16];
        match loris.read(&mut one) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("loris read {n} unexpected bytes ({core:?})"),
        }

        let report = client.metrics().expect("metrics");
        let events = client.trace(1024).expect("trace drains");
        let count = |kind: TraceKind| events.iter().filter(|e| e.kind == kind).count() as u64;

        // Counter <-> trace reconciliation, category by category.
        assert_eq!(report.ops.errors, 1, "exactly the garbage frame ({core:?})");
        let undecoded = events
            .iter()
            .filter(|e| e.kind == TraceKind::FrameError && e.detail == u64::MAX)
            .count() as u64;
        assert_eq!(undecoded, 1, "undecodable frames trace with no opcode ({core:?})");
        assert_eq!(count(TraceKind::FrameError), report.ops.errors, "({core:?})");

        assert_eq!(report.overloaded_total, 3, "({core:?})");
        assert_eq!(count(TraceKind::ConnShed), report.overloaded_total, "({core:?})");

        assert_eq!(report.deadline_evicted_total, 1, "({core:?})");
        assert_eq!(
            count(TraceKind::ConnDeadlineEvicted),
            report.deadline_evicted_total,
            "({core:?})"
        );
        assert_eq!(report.idle_reaped_total, 0, "({core:?})");
        assert_eq!(count(TraceKind::ConnIdleReaped), 0, "({core:?})");

        // Lifecycle events match the connection counters one for one:
        // healthy + garbage + loris accepted (sheds never admit), and
        // everyone but the healthy conn has a ConnClosed.
        assert_eq!(report.conns_accepted, 3, "({core:?})");
        assert_eq!(count(TraceKind::ConnAccepted), report.conns_accepted, "({core:?})");
        assert_eq!(
            count(TraceKind::ConnClosed),
            report.conns_accepted - report.conns_open,
            "({core:?})"
        );
        handle.shutdown();
    }
}

/// A wire rollback leaves an exact durable-store audit trail in the
/// trace on both cores: six `StoreOp` crash points per full persist, two
/// `PersistCommitted`, one `RollbackCommitted` whose `detail` names the
/// epoch rolled back to — and `rollbacks_total` reconciles with it.
#[test]
fn rollback_reconciles_counters_with_store_trace_events() {
    let gen_a = synthetic(10.0);
    let gen_b = synthetic(20.0);
    for core in [CoreKind::Readiness, CoreKind::ThreadPool] {
        let dir = std::env::temp_dir()
            .join(format!("dpsc-trace-rollback-{}-{core:?}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let manager = Arc::new(ShardManager::new());
        let config = ServerConfig { core, store_dir: Some(dir.clone()), ..ServerConfig::default() };
        let handle = Server::spawn(config, manager).expect("daemon binds");
        let mut client = Client::connect(handle.addr()).expect("client connects");

        let e1 = client.load_snapshot(0, &gen_a.to_bytes()).expect("A installs");
        let e2 = client.load_snapshot(0, &gen_b.to_bytes()).expect("B installs");
        let e3 = client.rollback(0, e1).expect("rollback to a retained epoch");
        assert!(e3 > e2, "rollback is append-only ({core:?})");

        let report = client.metrics().expect("metrics");
        let events = client.trace(1024).expect("trace drains");

        // Two full persists: each walks all six mutating store ops in
        // order. The rollback re-commits an existing payload, so it only
        // touches the manifest (ops 4 and 5).
        for op in 0u64..=3 {
            let n =
                events.iter().filter(|e| e.kind == TraceKind::StoreOp && e.detail == op).count();
            assert_eq!(n, 2, "payload op {op} runs once per full persist ({core:?})");
        }
        for op in 4u64..=5 {
            let n =
                events.iter().filter(|e| e.kind == TraceKind::StoreOp && e.detail == op).count();
            assert_eq!(n, 3, "manifest op {op} also runs for the rollback ({core:?})");
        }
        let persists: Vec<u64> = events
            .iter()
            .filter(|e| e.kind == TraceKind::PersistCommitted)
            .map(|e| e.epoch)
            .collect();
        assert_eq!(persists, vec![e1, e2], "({core:?})");

        let rollbacks: Vec<&TraceEvent> =
            events.iter().filter(|e| e.kind == TraceKind::RollbackCommitted).collect();
        assert_eq!(rollbacks.len() as u64, report.rollbacks_total, "({core:?})");
        assert_eq!(report.rollbacks_total, 1, "({core:?})");
        assert_eq!(rollbacks[0].shard, 0, "({core:?})");
        assert_eq!(rollbacks[0].epoch, e3, "the fresh epoch ({core:?})");
        assert_eq!(rollbacks[0].detail, e1, "detail names the epoch rolled back to ({core:?})");

        // Every install (two loads + the rollback's re-install) traced.
        let installs: Vec<&TraceEvent> =
            events.iter().filter(|e| e.kind == TraceKind::SnapshotInstalled).collect();
        assert_eq!(installs.len(), 3, "({core:?})");
        assert!(
            installs.iter().any(|e| e.epoch == e3 && e.detail == e1),
            "rollback install names its source epoch ({core:?})"
        );
        assert_eq!(report.ops.rollback, 1, "({core:?})");
        assert_eq!(report.ops.load_snapshot, 2, "({core:?})");
        assert!(report.op_latency.rollback.p99_ns > 0.0, "({core:?})");
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The slow-op log end to end on both cores: with a 1 ns threshold every
/// successful op is slow, each `SlowOp` event carries the pattern
/// fingerprint and the threshold, errors never enter the log, and the
/// text exposition serves the same counter over the wire.
#[test]
fn slow_op_log_reconciles_and_exposes_over_the_wire() {
    use dp_substring_counting::private_count::codec::fnv1a;

    let gen = synthetic(29.0);
    for core in [CoreKind::Readiness, CoreKind::ThreadPool] {
        let manager = Arc::new(ShardManager::new());
        manager.install(0, gen.clone(), 0);
        let config = ServerConfig {
            core,
            slow_op_threshold: Some(Duration::from_nanos(1)),
            ..ServerConfig::default()
        };
        let handle = Server::spawn(config, manager).expect("daemon binds");
        let mut client = Client::connect(handle.addr()).expect("client connects");

        for _ in 0..3 {
            client.query(0, b"aba").expect("query answered");
        }
        let _ = client.query(77, b"zz").expect_err("unknown shard errors");

        let report = client.metrics().expect("metrics");
        assert_eq!(report.slow_op_threshold_ns, 1, "({core:?})");
        assert_eq!(report.slow_ops_total, 3, "errors never enter the slow-op log ({core:?})");

        let events = client.trace(1024).expect("trace drains");
        let slow: Vec<&TraceEvent> =
            events.iter().filter(|e| e.kind == TraceKind::SlowOp).collect();
        // The three queries, plus the Metrics op that landed after its
        // own report snapshot.
        assert_eq!(slow.len(), 4, "({core:?})");
        assert!(
            slow.iter().take(3).all(|e| e.fingerprint == fnv1a(b"aba") && e.len == 3),
            "slow-op entries carry fingerprints and lengths only ({core:?})"
        );
        assert!(slow.iter().all(|e| e.detail == 1), "detail is the threshold ({core:?})");

        // The exposition reports the same counter (3 queries + Metrics +
        // Trace landed by the time MetricsText snapshots).
        let text = client.metrics_text().expect("exposition answered");
        assert!(text.contains("dpsc_slow_ops_total 5"), "({core:?}):\n{text}");
        assert!(text.contains("dpsc_slow_op_threshold_ns 1"), "({core:?}):\n{text}");
        assert!(
            text.contains("# TYPE dpsc_op_latency_ns summary"),
            "per-op summaries exposed ({core:?})"
        );
        handle.shutdown();
    }
}
