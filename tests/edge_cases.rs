//! Edge-case sweep for the exact substrate and the private structures:
//! empty patterns, patterns longer than any document, unary-alphabet
//! corpora, and single-document corpora — through `SuffixArray::from_ints`,
//! `CorpusIndex`, and `PrivateCountStructure::query`/`mine`. These paths
//! had no dedicated coverage before.

use dp_substring_counting::prelude::*;
use dp_substring_counting::strkit::suffix_array::SuffixArray;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the generalized text `S = S_1 $_1 … S_n $_n` with sentinels below
/// the letters, mirroring the paper's Lemma 7 concatenation, and validates
/// `SuffixArray::from_ints` against a naive sort.
fn check_generalized_sa(docs: &[&[u8]]) {
    let n_docs = docs.len() as u32;
    let mut ints = Vec::new();
    for (i, d) in docs.iter().enumerate() {
        ints.extend(d.iter().map(|&b| b as u32 + n_docs));
        ints.push(i as u32);
    }
    let sa = SuffixArray::from_ints(&ints, 256 + n_docs as usize);
    let mut expected: Vec<u32> = (0..ints.len() as u32).collect();
    expected.sort_by(|&a, &b| ints[a as usize..].cmp(&ints[b as usize..]));
    assert_eq!(sa.sa(), expected.as_slice(), "docs={docs:?}");
    for (r, &p) in sa.sa().iter().enumerate() {
        assert_eq!(sa.rank()[p as usize] as usize, r);
    }
}

/// Near-noiseless Theorem-1 build (ε = 10⁶): queries land within 0.5 of the
/// exact clipped counts, so edge semantics are observable through the DP
/// pipeline.
fn build_near_exact(db: &Database, mode: CountMode) -> (CorpusIndex, PrivateCountStructure) {
    let idx = CorpusIndex::build(db);
    let mut rng = StdRng::seed_from_u64(3);
    let params = BuildParams::new(mode, PrivacyParams::pure(1e6), 0.1).with_thresholds(0.9, 0.9);
    let s = build_pure(&idx, &params, &mut rng).expect("construction succeeds");
    (idx, s)
}

#[test]
fn empty_pattern_hits_the_root() {
    let db = Database::paper_example();
    let (idx, s) = build_near_exact(&db, CountMode::Substring);
    // The empty string occurs `Δ`-clipped in every document: its clipped
    // count is Σ_i min(ℓ, |S_i|+1)… the pipeline stores what the root was
    // charged with; the serving contract we pin down here is agreement and
    // finiteness, not a specific value.
    assert!(s.contains(b""));
    assert!(s.query(b"").is_finite());
    let f = s.freeze();
    assert_eq!(f.query(b"").to_bits(), s.query(b"").to_bits());
    // Exact substrate: the empty pattern's interval is the whole text.
    assert_eq!(idx.interval(b"").count(), idx.text_len());
}

#[test]
fn pattern_longer_than_any_document_is_absent() {
    let db = Database::paper_example(); // ℓ = 5
    let (idx, s) = build_near_exact(&db, CountMode::Substring);
    let long = b"aaaaaaaaaa"; // length 10 > ℓ
    assert_eq!(idx.count(long), 0);
    assert_eq!(idx.document_count(long), 0);
    assert!(!s.contains(long));
    assert_eq!(s.query(long), 0.0);
    assert_eq!(s.freeze().query(long), 0.0);
    // Mining can never produce a string longer than ℓ.
    for (m, _) in s.mine(f64::MIN) {
        assert!(m.len() <= db.max_len());
    }
}

#[test]
fn unary_alphabet_corpus() {
    // Documents are runs of a single letter; the suffix tree degenerates to
    // a path, which stresses the heavy-path decomposition (one path) and
    // the per-level candidate logic (one candidate per level).
    let docs: Vec<&[u8]> = vec![b"aaaa", b"aa", b"aaaaaa", b"a"];
    check_generalized_sa(&docs);

    let db = Database::new(Alphabet::new(b'a', 1), 6, docs.iter().map(|d| d.to_vec()).collect())
        .expect("valid unary database");
    let (idx, s) = build_near_exact(&db, CountMode::Substring);
    for k in 1..=6usize {
        let pat = vec![b'a'; k];
        let true_clipped = idx.count_clipped(&pat, db.max_len()) as f64;
        let got = s.query(&pat);
        assert!((got - true_clipped).abs() < 0.5, "a^{k}: noisy {got} vs clipped {true_clipped}");
    }
    // The trie is a single path: mining at a tiny threshold returns nested
    // prefixes a, aa, …, in DFS (here: length) order.
    let mined = s.mine(0.5);
    for (i, (m, _)) in mined.iter().enumerate() {
        assert_eq!(m.as_slice(), vec![b'a'; i + 1].as_slice());
    }
    assert!(!mined.is_empty());
    // Beyond ℓ: absent.
    assert_eq!(s.query(&[b'a'; 7]), 0.0);
}

#[test]
fn single_document_corpus() {
    let docs: Vec<&[u8]> = vec![b"abcab"];
    check_generalized_sa(&docs);

    let db = Database::new(Alphabet::lowercase(26), 5, vec![b"abcab".to_vec()])
        .expect("valid single-document database");
    let (idx, s) = build_near_exact(&db, CountMode::Substring);
    for pat in [&b"a"[..], b"ab", b"abc", b"bcab", b"abcab", b"ca"] {
        let true_clipped = idx.count_clipped(pat, db.max_len()) as f64;
        let got = s.query(pat);
        assert!((got - true_clipped).abs() < 0.5, "{pat:?}: noisy {got} vs clipped {true_clipped}");
    }
    // Absent substrings of valid length are 0 in structure and substrate.
    assert_eq!(idx.count(b"ba"), 0);
    assert_eq!(s.query(b"ba"), 0.0);

    // Document-count mode on one document: every present substring has
    // count 1.
    let (_, sdoc) = build_near_exact(&db, CountMode::Document);
    for pat in [&b"a"[..], b"ab", b"abcab"] {
        let got = sdoc.query(pat);
        assert!((got - 1.0).abs() < 0.5, "{pat:?}: document count {got}");
    }
    // mine(0.5) on document counts returns every stored substring once.
    let mined = sdoc.mine(0.5);
    let mut strings: Vec<Vec<u8>> = mined.into_iter().map(|(m, _)| m).collect();
    strings.sort();
    strings.dedup();
    let mut expected: Vec<Vec<u8>> = Vec::new();
    for i in 0..5usize {
        for j in i + 1..=5usize {
            expected.push(b"abcab"[i..j].to_vec());
        }
    }
    expected.sort();
    expected.dedup();
    assert_eq!(strings, expected);
}

#[test]
fn generalized_sa_more_edge_shapes() {
    // Empty-ish and degenerate shapes through from_ints.
    check_generalized_sa(&[b"a"]);
    check_generalized_sa(&[b"a", b"a", b"a"]);
    check_generalized_sa(&[b"ab", b"ba", b"ab"]);
    check_generalized_sa(&[b"zzzzzzzz"]);
    // from_ints on an empty text.
    let sa = SuffixArray::from_ints(&[], 4);
    assert!(sa.is_empty());
    assert_eq!(sa.len(), 0);
}
