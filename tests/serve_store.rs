//! Crash-safety contracts of the on-disk snapshot store, end to end
//! through the daemon: every enumerated crash point between "start
//! persist" and "manifest committed" recovers to a whole epoch (old or
//! fully-committed new, never a blend, never a wedge) on both server
//! cores; manifest corpora with torn tails, bit flips, duplicate
//! epochs, and missing payloads recover to the newest valid epoch; and
//! the `Rollback` wire op re-installs retained epochs durably.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dp_substring_counting::prelude::*;
use dp_substring_counting::serve::store::{MANIFEST_HEADER, MANIFEST_NAME, MANIFEST_RECORD_LEN};
use dp_substring_counting::serve::{ClientError, FaultPlan, FaultyIo, SnapshotStore, StoreIo};
use dp_substring_counting::strkit::trie::Trie;

/// A synthetic synopsis over a fixed key set whose every count is
/// `base + i` — two of these with different `base` disagree on *every*
/// stored node, which makes the no-blend assertions sharp.
fn synthetic(base: f64) -> FrozenSynopsis {
    let mut trie: Trie<f64> = Trie::new(base);
    let keys: Vec<Vec<u8>> = (0..50u8)
        .map(|i| vec![b'a' + (i % 4), b'a' + ((i / 4) % 4), b'a' + ((i / 16) % 4)])
        .collect();
    for (i, key) in keys.iter().enumerate() {
        let node = trie.insert_path(key, |_| 0.0);
        *trie.value_mut(node) = base + i as f64;
    }
    PrivateCountStructure::new(
        trie,
        CountMode::Substring,
        PrivacyParams::pure(2.0),
        3.0,
        4.0,
        50,
        3,
    )
    .freeze()
}

fn probe_refs(probe: &[Vec<u8>]) -> Vec<&[u8]> {
    probe.iter().map(|p| p.as_slice()).collect()
}

fn probe_set() -> Vec<Vec<u8>> {
    (0..50u8).map(|i| vec![b'a' + (i % 4), b'a' + ((i / 4) % 4), b'a' + ((i / 16) % 4)]).collect()
}

fn scratch_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!("dpsc-store-e2e-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A `StoreIo` delegating to a shared `FaultyIo`, so tests keep a handle
/// to the op counter while the store owns the box.
#[derive(Debug)]
struct SharedIo(Arc<FaultyIo>);

impl StoreIo for SharedIo {
    fn write_file(&self, p: &Path, b: &[u8]) -> std::io::Result<()> {
        self.0.write_file(p, b)
    }
    fn append_file(&self, p: &Path, b: &[u8]) -> std::io::Result<()> {
        self.0.append_file(p, b)
    }
    fn sync_file(&self, p: &Path) -> std::io::Result<()> {
        self.0.sync_file(p)
    }
    fn sync_dir(&self, p: &Path) -> std::io::Result<()> {
        self.0.sync_dir(p)
    }
    fn rename(&self, a: &Path, b: &Path) -> std::io::Result<()> {
        self.0.rename(a, b)
    }
    fn remove_file(&self, p: &Path) -> std::io::Result<()> {
        self.0.remove_file(p)
    }
    fn read_file(&self, p: &Path) -> std::io::Result<Vec<u8>> {
        self.0.read_file(p)
    }
    fn list_dir(&self, p: &Path) -> std::io::Result<Vec<PathBuf>> {
        self.0.list_dir(p)
    }
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_NAME)
}

/// The tentpole acceptance test: a clean store serves the OLD epoch;
/// then a `LoadSnapshot` of the NEW bytes is killed at every injected
/// fault point of the persist protocol (partial payload write, pre-
/// rename, pre-manifest-append, partial manifest record, post-append
/// pre-fsync), on both server cores. After each simulated crash the
/// daemon restarts on the same directory and must serve answers
/// bit-identical to either the old epoch or the fully-committed new one
/// — never a mix, never a panic, never a wedge.
#[test]
fn enumerated_crash_points_recover_old_or_new_on_both_cores() {
    let old_gen = synthetic(1_000.0);
    let new_gen = synthetic(9_000.0);
    let old_bytes = old_gen.to_bytes();
    let new_bytes = new_gen.to_bytes();
    let probe = probe_set();
    let refs = probe_refs(&probe);
    let expect_old: Vec<u64> = old_gen.query_batch(&refs).iter().map(|v| v.to_bits()).collect();
    let expect_new: Vec<u64> = new_gen.query_batch(&refs).iter().map(|v| v.to_bits()).collect();
    assert_ne!(expect_old, expect_new);

    // Counting mode pins the fault schedule: a follow-up persist into an
    // existing store is exactly 6 mutating ops (write tmp, fsync tmp,
    // rename, fsync dir, append manifest record, fsync manifest). If the
    // protocol grows an op, this assertion forces the enumeration below
    // to grow with it.
    const PERSIST_OPS: usize = 6;
    {
        let dir = scratch_dir("count");
        let counter = Arc::new(FaultyIo::new(FaultPlan::counting()));
        let store =
            SnapshotStore::open_with(&dir, 4, Box::new(SharedIo(Arc::clone(&counter)))).unwrap();
        store.persist(0, &old_bytes).unwrap();
        let after_first = counter.ops_executed();
        store.persist(0, &new_bytes).unwrap();
        assert_eq!(
            counter.ops_executed() - after_first,
            PERSIST_OPS,
            "persist op count changed; extend the crash enumeration"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Every crash point, plus mid-write partials at the two write ops:
    // op 0 = payload temp write, op 2 = rename, op 4 = manifest append.
    let plans: Vec<(FaultPlan, bool)> = vec![
        (FaultPlan::crash_at(0), true),            // nothing written
        (FaultPlan::crash_mid_write(0, 64), true), // torn payload temp
        (FaultPlan::crash_at(1), true),            // temp unsynced
        (FaultPlan::crash_at(2), true),            // pre-rename
        (FaultPlan::crash_at(3), true),            // renamed, dir unsynced
        (FaultPlan::crash_at(4), true),            // pre-manifest-append
        (FaultPlan::crash_mid_write(4, 13), true), // partial manifest record
        (FaultPlan::crash_at(5), false),           // appended, manifest unsynced
    ];

    for core in [CoreKind::Readiness, CoreKind::ThreadPool] {
        for (i, (plan, must_be_old)) in plans.iter().enumerate() {
            let dir = scratch_dir(&format!("crash-{core:?}-{i}"));
            // Seed the OLD epoch through a clean store.
            {
                let store = SnapshotStore::open(&dir, 4).unwrap();
                store.persist(0, &old_bytes).unwrap();
            }
            // Serve with the fault-injected store and try to install NEW.
            let faulty = Arc::new(FaultyIo::new(plan.clone()));
            let store = Arc::new(
                SnapshotStore::open_with(&dir, 4, Box::new(SharedIo(Arc::clone(&faulty))))
                    .expect("recovery of a clean store does not mutate"),
            );
            let manager = Arc::new(ShardManager::new());
            let config = ServerConfig { core, store: Some(store), ..ServerConfig::default() };
            let handle = Server::spawn(config, manager).expect("daemon binds");
            let mut client = Client::connect(handle.addr()).expect("client connects");

            let err = client
                .load_snapshot(0, &new_bytes)
                .expect_err(&format!("plan {i} must fail the install ({core:?})"));
            assert!(
                matches!(&err, ClientError::Server(m) if m.contains("not persisted")),
                "plan {i}: wrong error {err} ({core:?})"
            );
            assert!(faulty.is_dead(), "plan {i}: the fault must have fired ({core:?})");
            // The live daemon still serves the old epoch after the
            // failed install — no wedge, no partial state.
            let served: Vec<u64> = client
                .query_batch(0, &refs)
                .expect("old epoch keeps serving after the crash")
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(served, expect_old, "plan {i}: post-crash serving blended ({core:?})");
            drop(client);
            handle.shutdown();

            // "Process restart": recover the directory with a clean
            // store and serve again.
            let manager = Arc::new(ShardManager::new());
            let config =
                ServerConfig { core, store_dir: Some(dir.clone()), ..ServerConfig::default() };
            let handle = Server::spawn(config, manager).expect("daemon restarts");
            let mut client = Client::connect(handle.addr()).expect("client reconnects");
            let served: Vec<u64> = client
                .query_batch(0, &refs)
                .expect("recovered epoch serves")
                .iter()
                .map(|v| v.to_bits())
                .collect();
            if *must_be_old {
                assert_eq!(
                    served, expect_old,
                    "plan {i}: pre-commit crash must recover the old epoch ({core:?})"
                );
            } else {
                assert!(
                    served == expect_old || served == expect_new,
                    "plan {i}: recovery blended epochs ({core:?})"
                );
            }
            // Recovery also finished the cleanup: no temp files remain.
            let leftover_tmp = std::fs::read_dir(&dir)
                .unwrap()
                .any(|e| e.unwrap().file_name().to_string_lossy().ends_with(".tmp"));
            assert!(!leftover_tmp, "plan {i}: torn temp files must be swept ({core:?})");
            drop(client);
            handle.shutdown();
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Manifest recovery corpora: truncations at (and inside) every record
/// boundary, a bit-flipped record, duplicate epochs, a missing payload
/// file, and a corrupt header all recover to the newest *valid* epoch —
/// and an empty directory is a fresh start, not an error.
#[test]
fn manifest_corpora_recover_last_valid_prefix() {
    let gens: Vec<FrozenSynopsis> = (0..3).map(|i| synthetic(100.0 * (i + 1) as f64)).collect();
    let payloads: Vec<Vec<u8>> = gens.iter().map(|g| g.to_bytes()).collect();

    // Build a clean 3-epoch store to copy corpora from.
    let master = scratch_dir("master");
    {
        let store = SnapshotStore::open(&master, 8).unwrap();
        for bytes in &payloads {
            store.persist(7, bytes).unwrap();
        }
    }
    let master_manifest = std::fs::read(manifest_path(&master)).unwrap();
    assert_eq!(master_manifest.len(), MANIFEST_HEADER.len() + 3 * MANIFEST_RECORD_LEN);

    let clone_master = |tag: &str| -> PathBuf {
        let dir = scratch_dir(tag);
        std::fs::create_dir_all(&dir).unwrap();
        for entry in std::fs::read_dir(&master).unwrap() {
            let entry = entry.unwrap();
            std::fs::copy(entry.path(), dir.join(entry.file_name())).unwrap();
        }
        dir
    };
    let recovered_epoch = |dir: &Path| -> Option<(u64, Vec<u8>)> {
        let store = SnapshotStore::open(dir, 8).expect("corrupt corpora must not wedge open");
        let mut recs = store.take_recovered();
        assert!(recs.len() <= 1);
        recs.pop().map(|r| (r.epoch, r.bytes.to_vec()))
    };

    // Truncation at every record boundary, and a cut inside each record.
    for keep in 0..=3usize {
        for extra in [0usize, 17] {
            let cut = MANIFEST_HEADER.len() + keep * MANIFEST_RECORD_LEN + extra;
            if cut > master_manifest.len() || (keep == 3 && extra > 0) {
                continue;
            }
            let dir = clone_master(&format!("trunc-{keep}-{extra}"));
            let truncated = master_manifest[..cut].to_vec();
            std::fs::write(manifest_path(&dir), &truncated).unwrap();
            match (keep, recovered_epoch(&dir)) {
                (0, got) => assert!(got.is_none(), "0 whole records → fresh-ish start"),
                (k, Some((epoch, bytes))) => {
                    assert_eq!(epoch, k as u64, "cut at {cut} keeps {k} records");
                    assert_eq!(bytes, payloads[k - 1], "payload bit-identical");
                }
                (k, None) => panic!("cut at {cut} lost all {k} retained epochs"),
            }
            // The repair is durable: a second open sees the same state
            // (torn tail rewritten, not re-discovered).
            let second = SnapshotStore::open(&dir, 8).unwrap();
            assert_eq!(
                second.retained_epochs(7).len(),
                keep,
                "repaired manifest replays identically"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    // A bit flip inside record 1 (0-based): the valid prefix is record 0
    // only — recovery serves epoch 1 and discards the rest.
    {
        let dir = clone_master("bitflip");
        let mut bytes = master_manifest.clone();
        bytes[MANIFEST_HEADER.len() + MANIFEST_RECORD_LEN + 5] ^= 0x40;
        std::fs::write(manifest_path(&dir), &bytes).unwrap();
        let (epoch, payload) = recovered_epoch(&dir).expect("prefix survives the flip");
        assert_eq!(epoch, 1);
        assert_eq!(payload, payloads[0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Duplicate epochs (a half-committed retry's signature): the later
    // occurrence wins and the retained list stays duplicate-free.
    {
        let dir = clone_master("dup");
        let mut bytes = master_manifest.clone();
        let first_rec = master_manifest
            [MANIFEST_HEADER.len()..MANIFEST_HEADER.len() + MANIFEST_RECORD_LEN]
            .to_vec();
        bytes.extend_from_slice(&first_rec);
        std::fs::write(manifest_path(&dir), &bytes).unwrap();
        let store = SnapshotStore::open(&dir, 8).unwrap();
        assert_eq!(store.retained_epochs(7), vec![1, 2, 3], "no duplicate epochs");
        let rec = store.take_recovered().pop().unwrap();
        assert_eq!(rec.epoch, 3, "newest epoch still wins");
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Missing payload file for the newest epoch: fall back to epoch 2.
    {
        let dir = clone_master("missing");
        let newest = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.file_name().unwrap().to_string_lossy().starts_with("snap-"))
            .max()
            .unwrap();
        std::fs::remove_file(newest).unwrap();
        let (epoch, payload) = recovered_epoch(&dir).expect("older epoch takes over");
        assert_eq!(epoch, 2);
        assert_eq!(payload, payloads[1]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Bit rot in the newest payload file: checksum rejects it, epoch 2
    // takes over.
    {
        let dir = clone_master("payload-rot");
        let newest = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.file_name().unwrap().to_string_lossy().starts_with("snap-"))
            .max()
            .unwrap();
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&newest, &bytes).unwrap();
        let (epoch, payload) = recovered_epoch(&dir).expect("older epoch takes over");
        assert_eq!(epoch, 2);
        assert_eq!(payload, payloads[1]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // A corrupt header means no record was ever committed: fresh start.
    {
        let dir = clone_master("header");
        let mut bytes = master_manifest.clone();
        bytes[0] ^= 0xFF;
        std::fs::write(manifest_path(&dir), &bytes).unwrap();
        assert!(recovered_epoch(&dir).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    // An empty directory is a fresh start, not an error (daemon-level).
    {
        let dir = scratch_dir("fresh");
        let manager = Arc::new(ShardManager::new());
        let config = ServerConfig { store_dir: Some(dir.clone()), ..ServerConfig::default() };
        let handle = Server::spawn(config, Arc::clone(&manager)).expect("empty dir binds");
        let mut client = Client::connect(handle.addr()).expect("client connects");
        let report = client.metrics().expect("metrics answered");
        assert_eq!(report.recoveries_total, 0, "nothing to recover from an empty dir");
        client.load_snapshot(0, &payloads[0]).expect("fresh store accepts installs");
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&master);
}

/// The `Rollback` wire op end to end: re-installs a retained epoch under
/// a fresh durable epoch, the re-install survives a restart, unknown
/// epochs fail with the retained list, retention bounds the rollback
/// window, and a store-less daemon refuses the op outright.
#[test]
fn rollback_over_the_wire_restores_prior_release_durably() {
    let gen_a = synthetic(10.0);
    let gen_b = synthetic(20.0);
    let probe = probe_set();
    let refs = probe_refs(&probe);
    let expect_a: Vec<u64> = gen_a.query_batch(&refs).iter().map(|v| v.to_bits()).collect();

    let dir = scratch_dir("rollback");
    let manager = Arc::new(ShardManager::new());
    let config = ServerConfig { store_dir: Some(dir.clone()), ..ServerConfig::default() };
    let handle = Server::spawn(config, manager).expect("daemon binds");
    let mut client = Client::connect(handle.addr()).expect("client connects");

    let e1 = client.load_snapshot(0, &gen_a.to_bytes()).expect("A installs");
    let e2 = client.load_snapshot(0, &gen_b.to_bytes()).expect("B installs");
    assert!(e2 > e1);

    // Roll back to A: fresh epoch, A's bits serve again.
    let e3 = client.rollback(0, e1).expect("rollback to a retained epoch");
    assert!(e3 > e2, "rollback is append-only: a fresh epoch, not a rewind");
    let served: Vec<u64> =
        client.query_batch(0, &refs).unwrap().iter().map(|v| v.to_bits()).collect();
    assert_eq!(served, expect_a, "rollback serves the prior release bit-identically");
    let report = client.metrics().expect("metrics");
    assert_eq!(report.rollbacks_total, 1);
    assert_eq!(report.ops.rollback, 1);

    // Unknown epoch: typed refusal carrying the retained list; nothing
    // changes.
    let err = client.rollback(0, 999).expect_err("unknown epoch refused");
    assert!(matches!(&err, ClientError::Server(m) if m.contains("not retained")), "got: {err}");
    drop(client);
    handle.shutdown();

    // Restart: the rollback record is durable — A's bits still serve.
    let manager = Arc::new(ShardManager::new());
    let config = ServerConfig { store_dir: Some(dir.clone()), ..ServerConfig::default() };
    let handle = Server::spawn(config, manager).expect("daemon restarts");
    let mut client = Client::connect(handle.addr()).expect("client reconnects");
    let served: Vec<u64> =
        client.query_batch(0, &refs).unwrap().iter().map(|v| v.to_bits()).collect();
    assert_eq!(served, expect_a, "rolled-back release survives restart");
    let report = client.metrics().expect("metrics");
    assert_eq!(report.recoveries_total, 1, "one corpus replayed at startup");
    drop(client);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    // Store-less daemon: Rollback is a typed refusal.
    let manager = Arc::new(ShardManager::new());
    let handle = Server::spawn(ServerConfig::default(), manager).expect("daemon binds");
    let mut client = Client::connect(handle.addr()).expect("client connects");
    let err = client.rollback(0, 1).expect_err("no store, no rollback");
    assert!(
        matches!(&err, ClientError::Server(m) if m.contains("without a snapshot store")),
        "got: {err}"
    );
    handle.shutdown();
}

/// Retention end to end: with `retain_epochs = 2`, old epochs (and their
/// payload files) are pruned, pruned epochs refuse rollback, and the
/// retained window still works.
#[test]
fn retention_bounds_the_rollback_window() {
    let dir = scratch_dir("retain");
    let gens: Vec<FrozenSynopsis> = (0..4).map(|i| synthetic(50.0 * (i + 1) as f64)).collect();
    let manager = Arc::new(ShardManager::new());
    let config =
        ServerConfig { store_dir: Some(dir.clone()), retain_epochs: 2, ..ServerConfig::default() };
    let handle = Server::spawn(config, manager).expect("daemon binds");
    let mut client = Client::connect(handle.addr()).expect("client connects");
    let mut epochs = Vec::new();
    for g in &gens {
        epochs.push(client.load_snapshot(0, &g.to_bytes()).expect("install"));
    }

    // Only the newest two payload files remain on disk.
    let snaps = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|e| e.as_ref().unwrap().file_name().to_string_lossy().starts_with("snap-"))
        .count();
    assert_eq!(snaps, 2, "retention deletes pruned payload files");

    // Pruned epoch: refused, with the retained window in the message.
    let err = client.rollback(0, epochs[0]).expect_err("pruned epoch refused");
    assert!(matches!(&err, ClientError::Server(m) if m.contains("not retained")), "got: {err}");
    // Retained epoch: works.
    let probe = probe_set();
    let refs = probe_refs(&probe);
    let expect: Vec<u64> = gens[2].query_batch(&refs).iter().map(|v| v.to_bits()).collect();
    client.rollback(0, epochs[2]).expect("retained epoch rolls back");
    let served: Vec<u64> =
        client.query_batch(0, &refs).unwrap().iter().map(|v| v.to_bits()).collect();
    assert_eq!(served, expect);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Multi-corpus recovery: each corpus independently serves its newest
/// valid epoch after restart, and `recoveries_total` counts corpora.
#[test]
fn restart_recovers_every_corpus_to_its_newest_epoch() {
    let dir = scratch_dir("multi");
    let gens: Vec<FrozenSynopsis> = (0..3).map(|i| synthetic(7.0 * (i + 1) as f64)).collect();
    let probe = probe_set();
    let refs = probe_refs(&probe);

    {
        let manager = Arc::new(ShardManager::new());
        let config = ServerConfig { store_dir: Some(dir.clone()), ..ServerConfig::default() };
        let handle = Server::spawn(config, manager).expect("daemon binds");
        let mut client = Client::connect(handle.addr()).expect("client connects");
        for (i, g) in gens.iter().enumerate() {
            client.load_snapshot(i as u32, &g.to_bytes()).expect("install");
        }
        // Shard 1 gets a newer second epoch; recovery must pick it.
        client.load_snapshot(1, &gens[2].to_bytes()).expect("second epoch");
        handle.shutdown();
    }

    let manager = Arc::new(ShardManager::new());
    let config = ServerConfig { store_dir: Some(dir.clone()), ..ServerConfig::default() };
    let handle = Server::spawn(config, manager).expect("daemon restarts");
    let mut client = Client::connect(handle.addr()).expect("client reconnects");
    let report = client.metrics().expect("metrics");
    assert_eq!(report.recoveries_total, 3, "three corpora replayed");
    for (shard, gen) in [(0usize, &gens[0]), (1, &gens[2]), (2, &gens[2])] {
        let expect: Vec<u64> = gen.query_batch(&refs).iter().map(|v| v.to_bits()).collect();
        let served: Vec<u64> =
            client.query_batch(shard as u32, &refs).unwrap().iter().map(|v| v.to_bits()).collect();
        assert_eq!(served, expect, "shard {shard} recovered the wrong epoch");
    }
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
