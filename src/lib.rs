//! # dp-substring-counting
//!
//! A from-scratch Rust implementation of *Differentially Private Substring
//! and Document Counting with Near-Optimal Error* (Bernardini, Bille,
//! Gørtz, Steiner — PODS 2025, arXiv:2412.13813).
//!
//! This facade crate re-exports the whole system; see the individual crates
//! for the layers:
//!
//! | crate | contents |
//! |---|---|
//! | [`strkit`] | suffix arrays (SA-IS), LCP, RMQ/LCE, rolling hashes, tries |
//! | [`textindex`] | generalized corpus index: `count`, `count_Δ`, Document Count, q-gram enumeration |
//! | [`dpcore`] | Laplace/Gaussian mechanisms, budget accounting, binary-tree mechanism |
//! | [`hierarchy`] | heavy-path decomposition, DP counting on trees (Theorems 8–9), colored counting |
//! | [`private_count`] | Theorems 1–4 data structures, mining, prior-work baseline |
//! | [`lowerbounds`] | Theorems 5–7 instances and distinguishing attacks |
//! | [`workloads`] | synthetic corpus generators |
//! | [`audit`] | statistical conformance harness: sampler goodness-of-fit, end-to-end privacy distinguishers, utility-vs-theorem-bound scenario matrix |
//! | [`serve`] | sharded TCP serving daemon: epoll readiness core (10k+ connections on one thread), binary wire protocol, per-connection batching, epoch-keyed LRU cache, hot snapshot swap, live metrics |
//!
//! ## Quickstart
//!
//! ```
//! use dp_substring_counting::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // The paper's Example 1 database.
//! let db = Database::paper_example();
//! let idx = CorpusIndex::build(&db);
//!
//! // Theorem 1: ε-DP substring counting structure. On a 6-document toy
//! // database real DP noise drowns every count, so construction may take
//! // the paper's FAIL branch (candidate overflow) — both outcomes are
//! // legitimate mechanism outputs. Real corpora (see the examples/) have
//! // signal above the Θ(ℓ·polylog/ε) noise floor.
//! let mut rng = StdRng::seed_from_u64(0);
//! let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(1.0), 0.1)
//!     .with_thresholds(1.5, 1.5); // demo thresholds (post-processing)
//! match build_pure(&idx, &params, &mut rng) {
//!     Ok(structure) => {
//!         // Query ad libitum — post-processing, no further privacy loss.
//!         assert!(structure.query(b"ab").is_finite());
//!
//!         // Serving: freeze the trie into a flat immutable index (still
//!         // post-processing) — allocation-free lookups, batch queries,
//!         // and a compact binary wire format.
//!         let frozen = structure.freeze();
//!         let answers = frozen.query_batch(&[&b"ab"[..], b"be", b"zz"]);
//!         assert_eq!(answers.len(), 3);
//!         let shipped = FrozenSynopsis::from_bytes(&frozen.to_bytes()).unwrap();
//!         assert_eq!(shipped, frozen);
//!     }
//!     Err(e) => println!("construction aborted (FAIL branch): {e}"),
//! }
//! ```

pub use dpsc_audit as audit;
pub use dpsc_dpcore as dpcore;
pub use dpsc_hierarchy as hierarchy;
pub use dpsc_lowerbounds as lowerbounds;
pub use dpsc_private_count as private_count;
pub use dpsc_serve as serve;
pub use dpsc_strkit as strkit;
pub use dpsc_textindex as textindex;
pub use dpsc_workloads as workloads;

/// One-stop imports for applications.
pub mod prelude {
    pub use dpsc_audit::{run_matrix, AuditConfig, ConformanceReport};
    pub use dpsc_dpcore::budget::{BudgetAccountant, PrivacyParams};
    pub use dpsc_dpcore::noise::Noise;
    pub use dpsc_hierarchy::{
        private_tree_counts_approx, private_tree_counts_pure, ColoredUniverse, Tree,
        TreeSensitivity,
    };
    pub use dpsc_private_count::{
        build_approx, build_pure, build_qgram_fast, build_qgram_pure, build_simple_trie,
        evaluate_mining, BuildParams, CountMode, DecodeError, FastQgramParams, FrozenSynopsis,
        PrivateCountStructure, QgramParams, SimpleTrieParams, SnapshotCodec,
    };
    pub use dpsc_serve::{
        Client, ClientConfig, ClientError, CoreKind, MetricsReport, RetryPolicy, Server,
        ServerConfig, ServerHandle, ShardManager, ShutdownPolicy, SnapshotStore, TraceEvent,
        TraceKind,
    };
    pub use dpsc_strkit::alphabet::{Alphabet, Database};
    pub use dpsc_textindex::CorpusIndex;
}
