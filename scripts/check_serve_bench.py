#!/usr/bin/env python3
"""CI gate for the serving-tier perf baseline.

Compares a freshly generated results/BENCH_serve.json against the committed
results/BENCH_serve_baseline.json. Structural fields — shard definitions,
snapshot/universe digests, workload definition and the answers digest — must
match the baseline exactly: a digest change means the build output or the
serving path changed behaviour, which is a correctness signal and gets its
own error message. Throughput is gated per mode: the run fails when QPS
drops below baseline/<max_slowdown> (default 2.0; loopback TCP on shared CI
runners is noisy, so the perf gate is looser than the build gate's 1.25).
The per-shard single-query latency column (the in-process accelerated-path
microbenchmark) is gated with the same slowdown factor, and so is every
row of the connection sweep (conn_sweep) — including the 4096-connection
point, whose presence in the baseline makes the 10k-class concurrency
claim a hard CI requirement.

Usage: check_serve_bench.py [current.json] [baseline.json] [max_slowdown]
"""

import json
import sys

STRUCTURAL_SHARD_FIELDS = (
    "shard_id",
    "n",
    "ell",
    "epsilon",
    "node_count",
    "serialized_len",
    "universe",
    "universe_digest",
    "snapshot_digest",
)

# Added with the multi-workload shards (workload, corpus_bytes) and the
# v2 snapshot codec (serialized_len_v2, the deterministic delta-compressed
# encoding size); tolerated as absent in older baselines so the gate stays
# usable during the transition. When the baseline has them, drift
# hard-fails like any structural field.
OPTIONAL_STRUCTURAL_SHARD_FIELDS = (
    "workload",
    "corpus_bytes",
    "serialized_len_v2",
)

# Per-shard latency columns gated like qps (current may regress at most
# max_slowdown over baseline): the in-process single-query microbenchmark
# and the two cold-load decode paths (v1 full-copy vs v2 borrowed).
GATED_SHARD_LATENCY_FIELDS = (
    "single_query_ns",
    "cold_load_ns",
    "cold_load_v2_ns",
)

STRUCTURAL_WORKLOAD_FIELDS = (
    "connections",
    "requests_per_conn",
    "batch",
    "burst",
    "total_queries",
    "workload_digest",
    "answers_digest",
)

# Per-row structural fields of the connection sweep (conn_sweep): the
# point definition and its digests are deterministic for the seed; qps
# and qps_per_conn are measurements and get the slowdown gate instead.
STRUCTURAL_SWEEP_FIELDS = (
    "conns",
    "requests_per_conn",
    "total_queries",
    "workload_digest",
    "answers_digest",
)


def main() -> int:
    cur_path = sys.argv[1] if len(sys.argv) > 1 else "results/BENCH_serve.json"
    base_path = sys.argv[2] if len(sys.argv) > 2 else "results/BENCH_serve_baseline.json"
    max_slowdown = float(sys.argv[3]) if len(sys.argv) > 3 else 2.0

    try:
        with open(base_path) as f:
            baseline = json.load(f)
    except FileNotFoundError:
        print(f"[serve-gate] no baseline at {base_path}; skipping (commit one to arm the gate)")
        return 0
    with open(cur_path) as f:
        current = json.load(f)

    failures = []

    base_shards = {s["name"]: s for s in baseline["shards"]}
    cur_shards = {s["name"]: s for s in current["shards"]}
    for name, b in base_shards.items():
        c = cur_shards.get(name)
        if c is None:
            failures.append(f"shard {name}: present in baseline but missing from current run")
            continue
        fields = list(STRUCTURAL_SHARD_FIELDS)
        fields += [f for f in OPTIONAL_STRUCTURAL_SHARD_FIELDS if f in b]
        for field in fields:
            if b[field] != c[field]:
                failures.append(
                    f"shard {name}: structural field {field!r} changed "
                    f"({b[field]!r} -> {c[field]!r}) — served content drifted from baseline"
                )
        # Latency columns: gate each measured path like qps.
        for field in GATED_SHARD_LATENCY_FIELDS:
            if field not in b:
                continue
            b_ns, c_ns = b[field], c.get(field, float("inf"))
            ratio = c_ns / b_ns if b_ns else float("inf")
            status = "OK" if ratio <= max_slowdown else "REGRESSION"
            print(
                f"[serve-gate] shard {name}: {field} {b_ns:.0f} -> {c_ns:.0f} ns "
                f"({ratio:.2f}x slower-factor) {status}"
            )
            if ratio > max_slowdown:
                failures.append(
                    f"shard {name}: {field} regressed {ratio:.2f}x (limit {max_slowdown:.2f}x)"
                )
        # The compressed v2 encoding must actually be smaller than v1 on
        # every shard — a deterministic codec property, not a perf gate.
        if "serialized_len_v2" in c:
            v1_len, v2_len = c.get("serialized_len"), c["serialized_len_v2"]
            if v1_len is not None and v2_len >= v1_len:
                failures.append(
                    f"shard {name}: compressed v2 snapshot ({v2_len} B) is not smaller "
                    f"than v1 ({v1_len} B) — the v2 codec lost its size advantage"
                )

    for name in cur_shards:
        if name not in base_shards:
            print(f"[serve-gate] shard {name}: new shard (no baseline), informational only")

    bw, cw = baseline["workload"], current["workload"]
    for field in STRUCTURAL_WORKLOAD_FIELDS:
        if bw[field] != cw[field]:
            failures.append(
                f"workload: structural field {field!r} changed "
                f"({bw[field]!r} -> {cw[field]!r}) — load definition drifted from baseline"
            )

    base_modes = {m["mode"]: m for m in baseline["modes"]}
    cur_modes = {m["mode"]: m for m in current["modes"]}
    for mode, b in base_modes.items():
        c = cur_modes.get(mode)
        if c is None:
            failures.append(f"mode {mode}: missing from current run")
            continue
        ratio = b["qps"] / c["qps"] if c["qps"] else float("inf")
        status = "OK" if ratio <= max_slowdown else "REGRESSION"
        print(
            f"[serve-gate] {mode}: {b['qps']:.0f} -> {c['qps']:.0f} queries/s "
            f"({ratio:.2f}x slower-factor, p99 {c['latency_p99_us']:.0f} µs) {status}"
        )
        if ratio > max_slowdown:
            failures.append(
                f"{mode}: throughput regressed {ratio:.2f}x (limit {max_slowdown:.2f}x)"
            )

    # Connection sweep: every baseline point must exist in the current run
    # with identical structure (including the 4096-connection row — the
    # 10k-class concurrency claim), and its qps is gated like a mode.
    base_sweep = {p["conns"]: p for p in baseline.get("conn_sweep", [])}
    cur_sweep = {p["conns"]: p for p in current.get("conn_sweep", [])}
    if not base_sweep and cur_sweep:
        print("[serve-gate] conn_sweep: new section (no baseline), informational only")
    for conns, b in sorted(base_sweep.items()):
        c = cur_sweep.get(conns)
        if c is None:
            failures.append(
                f"conn_sweep {conns}: point present in baseline but missing from current run"
            )
            continue
        for field in STRUCTURAL_SWEEP_FIELDS:
            if b[field] != c[field]:
                failures.append(
                    f"conn_sweep {conns}: structural field {field!r} changed "
                    f"({b[field]!r} -> {c[field]!r}) — sweep definition drifted from baseline"
                )
        ratio = b["qps"] / c["qps"] if c["qps"] else float("inf")
        status = "OK" if ratio <= max_slowdown else "REGRESSION"
        print(
            f"[serve-gate] sweep {conns} conns: {b['qps']:.0f} -> {c['qps']:.0f} queries/s "
            f"({ratio:.2f}x slower-factor, {c['qps_per_conn']:.1f} qps/conn) {status}"
        )
        if ratio > max_slowdown:
            failures.append(
                f"conn_sweep {conns}: throughput regressed {ratio:.2f}x "
                f"(limit {max_slowdown:.2f}x)"
            )

    # Metrics reconciliation is asserted inside the benchmark itself; here
    # just require the recorded counters to agree when present.
    cur_metrics = current.get("metrics")
    if cur_metrics is not None:
        if cur_metrics["patterns_total"] != cur_metrics["generator_patterns_total"]:
            failures.append(
                "metrics: daemon patterns_total "
                f"({cur_metrics['patterns_total']}) disagrees with the generator "
                f"({cur_metrics['generator_patterns_total']})"
            )
        # Observability columns (per-op histogram + event-loop split): the
        # current run must always carry them — the daemon instruments by
        # default, so their absence means the layer was silently dropped.
        for field in (
            "op_query_batch_p50_ns",
            "op_query_batch_p99_ns",
            "loop_wait_ns",
            "loop_busy_ns",
            "loop_utilization",
            "trace_events_total",
        ):
            if field not in cur_metrics:
                failures.append(
                    f"metrics: observability column {field!r} missing from current run"
                )
        if cur_metrics.get("op_query_batch_p99_ns", 0) <= 0:
            failures.append(
                "metrics: op_query_batch_p99_ns is not positive — the per-op "
                "histogram recorded nothing during the load"
            )
        if cur_metrics.get("trace_events_total", 0) <= 0:
            failures.append(
                "metrics: trace_events_total is not positive — the trace ring "
                "recorded nothing during the load"
            )
        util = cur_metrics.get("loop_utilization")
        if util is not None and not (0.0 <= util <= 1.0):
            failures.append(f"metrics: loop_utilization {util} outside [0, 1]")
        if util is not None:
            print(
                f"[serve-gate] observability: op_query_batch p50 "
                f"{cur_metrics.get('op_query_batch_p50_ns', 0):.0f} ns / p99 "
                f"{cur_metrics.get('op_query_batch_p99_ns', 0):.0f} ns, "
                f"loop utilization {util:.1%}, "
                f"{cur_metrics.get('trace_events_total', 0)} trace events"
            )

    # Instrumentation overhead: the same pipelined replay against a daemon
    # with full observability (trace ring + slow-op log, the default) and
    # one stripped to bare counters. Observability must stay effectively
    # free: the gap is gated at 5% of counters-only throughput regardless
    # of max_slowdown. Tolerated as absent only in older baselines.
    MAX_OVERHEAD_FRAC = 0.05
    cur_over = current.get("overhead")
    if cur_over is None:
        failures.append("overhead: instrumentation-overhead section missing from current run")
    else:
        frac = cur_over["overhead_frac"]
        status = "OK" if frac <= MAX_OVERHEAD_FRAC else "REGRESSION"
        print(
            f"[serve-gate] overhead: {cur_over['instrumented_qps']:.0f} qps instrumented vs "
            f"{cur_over['counters_only_qps']:.0f} qps counters-only "
            f"({frac:+.2%} cost, limit {MAX_OVERHEAD_FRAC:.0%}) {status}"
        )
        if frac > MAX_OVERHEAD_FRAC:
            failures.append(
                f"overhead: observability costs {frac:.2%} of throughput "
                f"(limit {MAX_OVERHEAD_FRAC:.0%})"
            )

    # Degradation counters (overload sheds, deadline evictions, idle
    # reaps, rollbacks): each daemon counter must equal what the
    # generator observed — an exact reconciliation, not a perf gate.
    # Tolerated as absent in older baselines/runs during the transition.
    cur_deg = current.get("degradation")
    if cur_deg is None:
        if baseline.get("degradation") is not None:
            failures.append(
                "degradation: section present in baseline but missing from current run"
            )
    else:
        for total, observed in (
            ("overloaded_total", "shed_observed"),
            ("deadline_evicted_total", "loris_observed"),
            ("idle_reaped_total", "idle_observed"),
            ("rollbacks_total", "rollback_observed"),
        ):
            if cur_deg[total] != cur_deg[observed]:
                failures.append(
                    f"degradation: daemon {total} ({cur_deg[total]}) disagrees with "
                    f"the generator's {observed} ({cur_deg[observed]})"
                )
            elif cur_deg[total] == 0:
                failures.append(
                    f"degradation: {total} is 0 — the robustness scenario did not "
                    "exercise this path"
                )
        print(
            "[serve-gate] degradation: "
            + ", ".join(
                f"{k}={cur_deg[k]}"
                for k in (
                    "overloaded_total",
                    "deadline_evicted_total",
                    "idle_reaped_total",
                    "rollbacks_total",
                )
            )
            + " (all reconciled)"
        )

    # Crash-restart recovery: persist → kill → torn manifest tail →
    # recover → first bit-identical answer. Gated like a latency column
    # against the baseline when present; the recovery count itself is a
    # structural fact.
    cur_dur = current.get("durability")
    base_dur = baseline.get("durability")
    if cur_dur is None:
        if base_dur is not None:
            failures.append(
                "durability: section present in baseline but missing from current run"
            )
    else:
        if cur_dur["recoveries_total"] < 1:
            failures.append("durability: restart recovered no corpora")
        if base_dur is not None:
            b_ns, c_ns = base_dur["restart_recovery_ns"], cur_dur["restart_recovery_ns"]
            ratio = c_ns / b_ns if b_ns else float("inf")
            status = "OK" if ratio <= max_slowdown else "REGRESSION"
            print(
                f"[serve-gate] restart_recovery_ns {b_ns:.0f} -> {c_ns:.0f} ns "
                f"({ratio:.2f}x slower-factor) {status}"
            )
            if ratio > max_slowdown:
                failures.append(
                    f"durability: restart_recovery_ns regressed {ratio:.2f}x "
                    f"(limit {max_slowdown:.2f}x)"
                )
        else:
            print(
                f"[serve-gate] restart_recovery_ns {cur_dur['restart_recovery_ns']:.0f} ns "
                "(no baseline, informational only)"
            )

    if failures:
        print("[serve-gate] FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("[serve-gate] all modes within budget, structure matches baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
