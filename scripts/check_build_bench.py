#!/usr/bin/env python3
"""CI gate for the build-path perf baseline.

Compares the single-thread end-to-end build times in a freshly generated
results/BENCH_build.json against the committed results/BENCH_build_baseline.json
and fails when any scenario regressed by more than the allowed factor
(default 1.25, i.e. >25% slower). Structural fields (digests, node counts)
must match the baseline exactly — a digest change means the build's output
changed, which is a correctness signal, not a perf one, and gets its own
error message.

Usage: check_build_bench.py [current.json] [baseline.json] [max_ratio]
"""

import json
import sys

ALLOWED_NEW_SCENARIOS = True  # scenarios absent from the baseline are informational


def scenario_map(report):
    return {s["name"]: s for s in report["scenarios"]}


def single_thread_ns(scenario):
    for t in scenario["timings"]:
        if t["threads"] == 1:
            return t["end_to_end_ns"]
    raise KeyError(f"no threads=1 row in scenario {scenario['name']!r}")


def main() -> int:
    cur_path = sys.argv[1] if len(sys.argv) > 1 else "results/BENCH_build.json"
    base_path = sys.argv[2] if len(sys.argv) > 2 else "results/BENCH_build_baseline.json"
    max_ratio = float(sys.argv[3]) if len(sys.argv) > 3 else 1.25

    try:
        with open(base_path) as f:
            baseline = json.load(f)
    except FileNotFoundError:
        print(f"[build-gate] no baseline at {base_path}; skipping (commit one to arm the gate)")
        return 0
    with open(cur_path) as f:
        current = json.load(f)

    base, cur = scenario_map(baseline), scenario_map(current)
    failures = []
    for name, b in base.items():
        if name not in cur:
            failures.append(f"{name}: present in baseline but missing from current run")
            continue
        c = cur[name]
        structural = ["n", "ell", "epsilon", "tau", "candidates", "peak_trie_nodes", "digest"]
        # Added with the multi-workload scenarios; tolerate their absence in
        # older baselines so the gate stays usable during the transition.
        for opt in ("workload", "corpus_bytes"):
            if opt in b:
                structural.append(opt)
        for field in structural:
            if b[field] != c[field]:
                failures.append(
                    f"{name}: structural field {field!r} changed "
                    f"({b[field]!r} -> {c[field]!r}) — build output drifted from baseline"
                )
        b_ns, c_ns = single_thread_ns(b), single_thread_ns(c)
        ratio = c_ns / b_ns if b_ns else float("inf")
        status = "OK" if ratio <= max_ratio else "REGRESSION"
        print(
            f"[build-gate] {name}: single-thread end-to-end "
            f"{b_ns / 1e6:.2f} ms -> {c_ns / 1e6:.2f} ms ({ratio:.2f}x) {status}"
        )
        if ratio > max_ratio:
            failures.append(
                f"{name}: single-thread build time regressed {ratio:.2f}x "
                f"(limit {max_ratio:.2f}x)"
            )
    for name in cur:
        if name not in base and ALLOWED_NEW_SCENARIOS:
            print(f"[build-gate] {name}: new scenario (no baseline), informational only")

    if failures:
        print("[build-gate] FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("[build-gate] all scenarios within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
