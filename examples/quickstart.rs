//! Quickstart: exact counts on the paper's Example 1, then real
//! differentially private structures on a corpus large enough for signal to
//! survive the (worst-case-calibrated) noise.
//!
//! Run with: `cargo run --release --example quickstart`

use dp_substring_counting::prelude::*;
use dp_substring_counting::workloads::markov_corpus;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ---- Part 1: the paper's Example 1, exact -----------------------------
    let db = Database::paper_example();
    let idx = CorpusIndex::build(&db);
    println!("Example 1: D = {{aaaa, abe, absab, babe, bee, bees}}");
    println!(
        "  Document Count(ab) = {}   Substring Count(ab) = {}   (paper: 3 and 4)",
        idx.document_count(b"ab"),
        idx.count(b"ab"),
    );

    // ---- Part 2: private structures on a realistic corpus -----------------
    // DP noise scales with ℓ/ε *regardless of n* (the paper's Ω(ℓ) lower
    // bound), so the corpus must be large for counts to dominate noise.
    let mut rng = StdRng::seed_from_u64(2025);
    let corpus = markov_corpus(2000, 32, 8, 0.75, &mut rng);
    let cidx = CorpusIndex::build(&corpus);
    println!(
        "\ncorpus: n = {} documents, ℓ = {}, |Σ| = {}",
        corpus.n(),
        corpus.max_len(),
        corpus.alphabet().size(),
    );

    // Theorem 1: ε-DP Substring Count. Demo thresholds are post-processing;
    // the ε guarantee is unchanged.
    let eps = 4.0;
    let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(eps), 0.1)
        .with_thresholds(800.0, 800.0);
    let substr = build_pure(&cidx, &params, &mut rng).expect("construction succeeded");
    println!("\nTheorem 1 (ε = {eps}) substring counts   [true → noisy]");
    for pat in [&b"ab"[..], b"abc", b"abcd", b"ba"] {
        println!(
            "  count({:4}) = {:6} → {:9.1}",
            String::from_utf8_lossy(pat),
            cidx.count(pat),
            substr.query(pat),
        );
    }
    println!(
        "  structure: {} trie nodes, count error ≤ α = {:.0} w.p. 0.9",
        substr.node_count(),
        substr.alpha_counts(),
    );

    // Theorem 2: (ε,δ)-DP Document Count — the √ℓ-better noise.
    let params = BuildParams::new(CountMode::Document, PrivacyParams::approx(eps, 1e-6), 0.1)
        .with_thresholds(800.0, 800.0);
    let doc = build_approx(&cidx, &params, &mut rng).expect("construction succeeded");
    println!("\nTheorem 2 (ε = {eps}, δ = 1e-6) document counts   [true → noisy]");
    for pat in [&b"ab"[..], b"abcd", b"abcdefgh"] {
        println!(
            "  count_1({:8}) = {:5} → {:9.1}",
            String::from_utf8_lossy(pat),
            cidx.document_count(pat),
            doc.query(pat),
        );
    }
    println!(
        "  Gaussian α = {:.0} vs Laplace α = {:.0}: the √(ℓΔ) improvement at Δ=1",
        doc.alpha_counts(),
        substr.alpha_counts(),
    );

    // Mining at several thresholds: free post-processing of one release.
    println!("\nfrequent substrings from ONE private structure (no extra privacy cost):");
    for tau in [2000.0, 5000.0] {
        let mined = substr.mine(tau);
        println!("  τ = {tau}: {} strings above threshold", mined.len());
    }
    println!("\ntop-5 substrings by noisy count:");
    for (gram, count) in substr.mine_top_k(5, None) {
        println!("  {:8} → {:9.1}", String::from_utf8_lossy(&gram), count);
    }

    // The structure is a publishable artifact: serialize, reload, same
    // answers (the file contents are already differentially private).
    let text = substr.to_text();
    let reloaded = dp_substring_counting::private_count::PrivateCountStructure::from_text(&text)
        .expect("roundtrip");
    assert_eq!(reloaded.query(b"ab"), substr.query(b"ab"));
    println!("\nserialized structure: {} bytes, reload verified", text.len());
}
