//! Serving a frozen synopsis as a *service*: build once under the
//! privacy budget, freeze, serialize, ship the bytes to a daemon over
//! the wire, and answer queries through the binary protocol — including
//! a mid-traffic hot snapshot swap.
//!
//! The construction is the only data-touching step; everything after
//! `freeze()` — serialization, loading into the daemon, every query, and
//! the hot swap itself — is post-processing with zero additional privacy
//! cost.
//!
//! Run with: `cargo run --release --example serve_queries`

use std::sync::Arc;
use std::time::Instant;

use dp_substring_counting::prelude::*;
use dp_substring_counting::workloads::markov_corpus;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One ε-DP construction over a fresh Markov corpus, frozen and ready to
/// ship. Low thresholds at large ε give a deep synopsis; what we study
/// here is serving, not privacy/utility trade-offs (see quickstart).
fn build_snapshot(seed: u64) -> (FrozenSynopsis, Vec<Vec<u8>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    // Sized so the whole example (two generations) stays well inside the
    // <10 s example budget even on a loaded single-vCPU host.
    let corpus = markov_corpus(400, 24, 8, 0.6, &mut rng);
    let idx = CorpusIndex::build(&corpus);
    let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(1e6), 0.1)
        .with_thresholds(2.0, 2.0);
    let structure = build_pure(&idx, &params, &mut rng).expect("construction succeeded");
    let mut patterns: Vec<Vec<u8>> = Vec::new();
    for doc in corpus.documents().iter().take(400) {
        let len = 4.min(doc.len());
        patterns.push(doc[..len].to_vec());
        if doc.len() >= 8 {
            patterns.push(doc[2..8].to_vec());
        }
    }
    for _ in 0..400 {
        // Random digit patterns outside the alphabet: guaranteed absent.
        let len = rng.gen_range(2..10usize);
        patterns.push((0..len).map(|_| rng.gen_range(b'0'..=b'9')).collect());
    }
    (structure.freeze(), patterns)
}

fn main() {
    // ---- Construct two snapshot generations (the private passes) ----------
    let t0 = Instant::now();
    let (gen1, patterns) = build_snapshot(7);
    let (gen2, _) = build_snapshot(8);
    println!(
        "built two snapshot generations in {:.2?}: {} / {} nodes",
        t0.elapsed(),
        gen1.node_count(),
        gen2.node_count()
    );
    let bytes1 = gen1.to_bytes();
    let bytes2 = gen2.to_bytes();

    // ---- Daemon on a loopback ephemeral port ------------------------------
    let manager = Arc::new(ShardManager::new());
    let handle = Server::spawn(ServerConfig::default(), Arc::clone(&manager))
        .expect("daemon binds a loopback port");
    println!("daemon listening on {}", handle.addr());
    let mut client = Client::connect(handle.addr()).expect("client connects");

    // ---- Ship the snapshot over the wire ----------------------------------
    let epoch1 = client.load_snapshot(0, &bytes1).expect("snapshot loads");
    println!("shard 0 loaded: {} bytes on the wire, serving epoch {epoch1}", bytes1.len());

    // ---- Mixed query/batch session ----------------------------------------
    let pattern_refs: Vec<&[u8]> = patterns.iter().map(|p| p.as_slice()).collect();
    let t0 = Instant::now();
    for p in pattern_refs.iter().take(200) {
        let served = client.query(0, p).expect("query answered");
        assert_eq!(served.to_bits(), gen1.query(p).to_bits(), "served == local, bit for bit");
    }
    println!("200 single queries in {:.2?} (each bit-identical to a local query)", t0.elapsed());

    let t0 = Instant::now();
    let served = client.query_batch(0, &pattern_refs).expect("batch answered");
    let local = gen1.query_batch(&pattern_refs);
    assert_eq!(served.len(), local.len());
    for (s, l) in served.iter().zip(&local) {
        assert_eq!(s.to_bits(), l.to_bits());
    }
    println!(
        "one {}-query batch in {:.2?} (bit-identical again)",
        pattern_refs.len(),
        t0.elapsed()
    );

    let present = client.contains(0, &patterns[0]).expect("contains answered");
    println!("contains({:?}) = {present}", String::from_utf8_lossy(&patterns[0]));

    // ---- Hot swap under the same connection -------------------------------
    let epoch2 = client.load_snapshot(0, &bytes2).expect("hot swap succeeds");
    let after = client.query_batch(0, &pattern_refs).expect("post-swap batch");
    let expected: Vec<f64> = gen2.query_batch(&pattern_refs);
    for (s, l) in after.iter().zip(&expected) {
        assert_eq!(s.to_bits(), l.to_bits());
    }
    println!("hot-swapped to epoch {epoch2}: answers now match generation 2, bit for bit");

    // ---- Operator stats ---------------------------------------------------
    let stats = client.stats().expect("stats answered");
    for s in &stats.shards {
        println!(
            "shard {} @ epoch {}: {} nodes, {} bytes serialized, ε = {}, α = {:.2}",
            s.shard_id, s.epoch, s.node_count, s.serialized_len, s.epsilon, s.alpha
        );
    }
    println!(
        "cache: {} hits / {} misses ({} entries of {} capacity)",
        stats.cache.hits, stats.cache.misses, stats.cache.entries, stats.cache.capacity
    );

    // ---- Live serving metrics ---------------------------------------------
    let report = client.metrics().expect("metrics answered");
    println!(
        "metrics: {} conns open ({} accepted), {} pattern lookups at {:.0} lifetime qps, \
         service latency p50 {:.0} ns / p99 {:.0} ns, cache hit rate {:.0}%",
        report.conns_open,
        report.conns_accepted,
        report.patterns_total,
        report.qps,
        report.latency_p50_ns,
        report.latency_p99_ns,
        report.cache_hit_rate * 100.0
    );
    for shard in &report.shards {
        println!(
            "metrics shard {}: epoch {}, {} bytes resident",
            shard.shard_id, shard.epoch, shard.serialized_len
        );
    }
    println!(
        "per-op latency: query p50 {:.0} ns / p99 {:.0} ns, query_batch p50 {:.0} ns / \
         p99 {:.0} ns, load_snapshot p99 {:.0} ns",
        report.op_latency.query.p50_ns,
        report.op_latency.query.p99_ns,
        report.op_latency.query_batch.p50_ns,
        report.op_latency.query_batch.p99_ns,
        report.op_latency.load_snapshot.p99_ns
    );

    // ---- Trace ring: structured events, patterns as fingerprints ----------
    // Every frame, install and connection transition landed in the trace
    // ring (on by default). Pattern bytes never appear — frame events
    // carry an FNV-1a fingerprint and the length only.
    let events = client.trace(1024).expect("trace answered");
    println!("trace ring holds {} events; the last five:", events.len());
    for e in events.iter().rev().take(5).rev() {
        println!(
            "  #{:<6} {:?} conn={} shard={} fp={:016x} len={} dur={} ns",
            e.seq, e.kind, e.conn, e.shard, e.fingerprint, e.len, e.dur_ns
        );
    }

    // ---- Prometheus-style text exposition ---------------------------------
    let text = client.metrics_text().expect("exposition answered");
    let excerpt: Vec<&str> = text
        .lines()
        .filter(|l| {
            l.starts_with("dpsc_patterns_total")
                || l.starts_with("dpsc_op_latency_ns{op=\"query_batch\"")
                || l.starts_with("dpsc_trace_events_total")
        })
        .collect();
    println!("exposition is {} lines of scrape-ready text, e.g.:", text.lines().count());
    for l in excerpt {
        println!("  {l}");
    }

    // ---- Clean shutdown ---------------------------------------------------
    client.shutdown_server().expect("daemon acknowledges shutdown");
    handle.shutdown();
    println!("daemon stopped cleanly");
}
