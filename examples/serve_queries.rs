//! Serving a frozen synopsis: build once under the privacy budget, freeze
//! into the flat index, ship the bytes, answer queries at speed.
//!
//! The construction is the only data-touching step; everything after
//! `freeze()` — including the serialization round-trip and every query —
//! is post-processing with zero additional privacy cost.
//!
//! Run with: `cargo run --release --example serve_queries`

use std::time::Instant;

use dp_substring_counting::prelude::*;
use dp_substring_counting::workloads::markov_corpus;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Times `f` over `iters` runs and returns queries per second.
fn qps(iters: usize, queries_per_iter: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    (iters * queries_per_iter) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    // ---- Construction (the one private pass) ------------------------------
    let mut rng = StdRng::seed_from_u64(7);
    let corpus = markov_corpus(1000, 32, 8, 0.6, &mut rng);
    let idx = CorpusIndex::build(&corpus);
    println!(
        "corpus: n = {} documents, ℓ = {}, |Σ| = {}",
        corpus.n(),
        corpus.max_len(),
        corpus.alphabet().size(),
    );
    // Low thresholds at large ε give a deep synopsis; what we study here is
    // serving cost, not privacy/utility trade-offs (see quickstart for those).
    let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(1e6), 0.1)
        .with_thresholds(2.0, 2.0);
    let t0 = Instant::now();
    let structure = build_pure(&idx, &params, &mut rng).expect("construction succeeded");
    println!(
        "built: {} trie nodes in {:.2?} (one-time, ε-DP)",
        structure.node_count(),
        t0.elapsed()
    );

    // ---- Freeze + ship ----------------------------------------------------
    let t0 = Instant::now();
    let frozen = structure.freeze();
    println!("frozen: {} nodes flattened in {:.2?}", frozen.node_count(), t0.elapsed());
    let bytes = frozen.to_bytes();
    let served = FrozenSynopsis::from_bytes(&bytes).expect("shipped bytes parse");
    println!(
        "shipped: {} bytes on the wire, round-trips losslessly: {}",
        bytes.len(),
        served == frozen,
    );

    // ---- Query workload: hot substrings + absent probes -------------------
    let mut patterns: Vec<Vec<u8>> = Vec::new();
    for doc in corpus.documents().iter().take(500) {
        let len = 4.min(doc.len());
        patterns.push(doc[..len].to_vec());
        if doc.len() >= 8 {
            patterns.push(doc[2..8].to_vec());
        }
    }
    for _ in 0..500 {
        // Random patterns outside the alphabet: guaranteed absent.
        let len = rng.gen_range(2..10usize);
        patterns.push((0..len).map(|_| rng.gen_range(b'0'..=b'9')).collect());
    }
    let pattern_refs: Vec<&[u8]> = patterns.iter().map(|p| p.as_slice()).collect();
    println!("\nworkload: {} patterns (present + absent mix)", patterns.len());

    // Correctness first: frozen must agree with the trie bit-for-bit.
    for p in &pattern_refs {
        assert_eq!(structure.query(p).to_bits(), served.query(p).to_bits());
    }

    // ---- Throughput -------------------------------------------------------
    let iters = 200;
    let nq = pattern_refs.len();
    let trie_qps = qps(iters, nq, || {
        for p in &pattern_refs {
            std::hint::black_box(structure.query(p));
        }
    });
    let single_qps = qps(iters, nq, || {
        for p in &pattern_refs {
            std::hint::black_box(served.query(p));
        }
    });
    let batch_qps = qps(iters, nq, || {
        std::hint::black_box(served.query_batch(&pattern_refs));
    });
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    let par_qps = qps(iters, nq, || {
        std::hint::black_box(served.query_batch_parallel(&pattern_refs, threads));
    });
    println!("trie walk        : {trie_qps:>12.0} queries/s");
    println!(
        "frozen single    : {single_qps:>12.0} queries/s   ({:.2}× trie)",
        single_qps / trie_qps
    );
    println!(
        "frozen batch     : {batch_qps:>12.0} queries/s   ({:.2}× trie)",
        batch_qps / trie_qps
    );
    println!(
        "frozen parallel  : {par_qps:>12.0} queries/s   ({:.2}× trie, {threads} threads)",
        par_qps / trie_qps
    );
}
