//! Transit-log route mining (the application of Chen et al. [19]): build a
//! Theorem 2 (ε,δ)-DP document-count structure over rider trip sequences
//! and mine popular route segments, comparing against the simple trie
//! baseline from prior work.
//!
//! Why Theorem 2 and not Theorem 1 here: at trip length ℓ = 24 the
//! heavy-path pipeline's worst-case constants (~ℓ·log|T_C|·log ℓ) still
//! exceed the baseline's ℓ² — the paper's asymptotic ℓ-vs-ℓ² win has a
//! crossover that experiment `t1_error_vs_ell` locates. The (ε,δ) variant's
//! √(ℓΔ) noise is already decisively smaller at Δ = 1.
//!
//! Run with: `cargo run --release --example transit_mining`

use dp_substring_counting::prelude::*;
use dp_substring_counting::workloads::transit_corpus;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    // 10k riders, trips up to 24 stations over a 10-station network,
    // 3 popular route segments of 4 stations used by ~90% of riders.
    let corpus = transit_corpus(10_000, 24, 10, 3, 4, 0.9, &mut rng);
    let idx = CorpusIndex::build(&corpus.db);
    println!("transit corpus: {} riders, trips ≤ {} stations", corpus.db.n(), corpus.db.max_len());
    for route in &corpus.routes {
        println!(
            "  planted route {:?}: ridden by {} riders",
            String::from_utf8_lossy(route),
            idx.document_count(route),
        );
    }

    let eps = 2.0;
    // The candidate threshold must sit above the noise floor (scale
    // ~2ℓ(⌊log ℓ⌋+1)·3/ε ≈ 360 here), or spurious candidates overflow the
    // nℓ cap — the paper's FAIL outcome.
    let tau_demo = 1200.0;

    // Theorem 2 pipeline ((ε,δ)-DP, Gaussian noise, √(ℓΔ) error at Δ=1).
    let params = BuildParams::new(CountMode::Document, PrivacyParams::approx(eps, 1e-6), 0.1)
        .with_thresholds(tau_demo, tau_demo);
    let t0 = std::time::Instant::now();
    let ours = build_approx(&idx, &params, &mut rng).expect("construction succeeded");
    let t_ours = t0.elapsed();

    // Prior-work baseline with the same ε (noise scales with ℓ²).
    let baseline_params = SimpleTrieParams {
        mode: CountMode::Document,
        privacy: PrivacyParams::pure(eps),
        beta: 0.1,
        tau_override: Some(tau_demo),
        max_depth: Some(8),
        node_cap: Some(1 << 16),
    };
    let t0 = std::time::Instant::now();
    let baseline = build_simple_trie(&idx, &baseline_params, &mut rng);
    let t_base = t0.elapsed();

    println!("\nnoise scale comparison at ε = {eps} (ℓ = {}):", corpus.db.max_len());
    println!("  Theorem 2 heavy-path pipeline: α ≤ {:8.0} ({:.1?})", ours.alpha_counts(), t_ours);
    println!(
        "  simple-trie baseline [19]:     α ≤ {:8.0} ({:.1?})",
        baseline.alpha_counts(),
        t_base
    );

    // How well does each recover the planted routes at the mining threshold?
    println!("\nplanted-route recovery (noisy document count, τ = {tau_demo}):");
    println!("  {:<10} {:>6} {:>12} {:>12}", "route", "true", "Theorem 2", "baseline");
    for route in &corpus.routes {
        println!(
            "  {:<10} {:>6} {:>12.1} {:>12.1}",
            String::from_utf8_lossy(route),
            idx.document_count(route),
            ours.query(route),
            baseline.query(route),
        );
    }

    // Mining precision/recall for length-4 segments.
    for (name, s) in [("Theorem 2", &ours), ("baseline", &baseline)] {
        let mined: Vec<Vec<u8>> = s.mine_qgrams(4, tau_demo).into_iter().map(|(g, _)| g).collect();
        let eval = evaluate_mining(&idx, 1, &mined, tau_demo, s.alpha_counts(), Some(4));
        println!(
            "\n{name}: mined {} segments of length 4 (truly frequent: {}), precision {:.2}, recall {:.2}",
            mined.len(),
            eval.true_frequent,
            eval.precision,
            eval.recall,
        );
    }
}
