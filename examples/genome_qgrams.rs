//! Genome q-gram publishing (the application of Khatri et al. [50]):
//! build a fast (ε,δ)-DP q-gram structure (Theorem 4) over DNA reads with
//! planted motifs, then mine frequent q-grams at several thresholds.
//!
//! Run with: `cargo run --release --example genome_qgrams`

use dp_substring_counting::prelude::*;
use dp_substring_counting::workloads::dna_corpus;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn decode_dna(s: &[u8]) -> String {
    s.iter().map(|&b| Alphabet::dna_decode(b)).collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    // 5000 reads of length 80, two motifs planted at 90% / 25% document
    // frequency plus background noise. The corpus must be large enough that
    // motif counts clear Theorem 4's privacy-clamped threshold (~10σ).
    let q = 8;
    let corpus = dna_corpus(5000, 80, q, &[0.9, 0.25], &mut rng);
    let idx = CorpusIndex::build(&corpus.db);
    println!(
        "DNA corpus: {} reads × {} bp, {} distinct {q}-grams",
        corpus.db.n(),
        corpus.db.max_len(),
        dp_substring_counting::textindex::depth_groups(&idx, q).len(),
    );
    for (motif, freq) in &corpus.motifs {
        println!(
            "  planted motif {} (target {:.0}% of reads, true document count {})",
            decode_dna(motif),
            freq * 100.0,
            idx.document_count(motif),
        );
    }

    // Theorem 4: near-linear-time (ε,δ)-DP q-gram document counts.
    let params = FastQgramParams {
        q,
        mode: CountMode::Document,
        privacy: PrivacyParams::approx(4.0, 1e-6),
        beta: 0.1,
        tau_override: None, // analytic 2α; lower values are clamped to α anyway
    };
    let t0 = std::time::Instant::now();
    let structure = build_qgram_fast(&idx, &params, &mut rng).expect("construction succeeded");
    println!(
        "\nTheorem 4 structure built in {:.1?} (ε = 4, δ = 1e-6): {} published {q}-grams",
        t0.elapsed(),
        structure.mine_qgrams(q, f64::NEG_INFINITY).len(),
    );

    // Mine at multiple thresholds — all post-processing of one release.
    for tau in [3000.0, 4000.0] {
        let mined = structure.mine_qgrams(q, tau);
        println!("\nq-grams with noisy document count ≥ {tau}: {}", mined.len());
        let mut top = mined;
        top.sort_by(|a, b| b.1.total_cmp(&a.1));
        for (gram, count) in top.iter().take(5) {
            let planted = corpus.motifs.iter().any(|(m, _)| m == gram);
            println!(
                "  {} → {:7.1}{}",
                decode_dna(gram),
                count,
                if planted { "   ← planted motif" } else { "" },
            );
        }
    }

    // Utility audit against Definition 2.
    let tau = 3000.0;
    let mined: Vec<Vec<u8>> = structure.mine_qgrams(q, tau).into_iter().map(|(g, _)| g).collect();
    let eval = evaluate_mining(&idx, 1, &mined, tau, structure.alpha_counts(), Some(q));
    println!(
        "\nDefinition 2 audit at τ = {tau}: {} truly-frequent, precision {:.2}, recall {:.2}, contract holds: {}",
        eval.true_frequent,
        eval.precision,
        eval.recall,
        eval.contract_holds(),
    );
}
