//! Counting on trees (paper §5 / Theorems 8–9): a hierarchical location
//! histogram (zip → area → state) and colored tree counting (distinct
//! colors below each node), released with the heavy-path mechanism.
//!
//! Run with: `cargo run --release --example tree_histogram`

use dp_substring_counting::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // A 3-level hierarchy: 4 states × 8 areas × 16 zips = 512 leaves.
    let tree = {
        let mut parents: Vec<Option<u32>> = vec![None];
        for _state in 0..4 {
            parents.push(Some(0));
        }
        for state in 0..4u32 {
            for _area in 0..8 {
                parents.push(Some(1 + state));
            }
        }
        let first_area = 5;
        for area in 0..32u32 {
            for _zip in 0..16 {
                parents.push(Some(first_area + area));
            }
        }
        Tree::from_parents(&parents)
    };
    let leaves = tree.leaves();
    println!(
        "hierarchy: {} nodes, height {}, {} zip-level leaves",
        tree.n(),
        tree.height(),
        leaves.len(),
    );

    // Universe: 16 elements per zip; colors = 4096 device models (counts
    // must dominate the Θ(polylog/ε) noise for the release to be useful).
    let universe_size = leaves.len() * 16;
    let leaf_of: Vec<u32> = (0..universe_size).map(|i| leaves[i % leaves.len()]).collect();
    let color_of: Vec<u32> = (0..universe_size).map(|_| rng.gen_range(0..4096)).collect();
    let universe = ColoredUniverse::new(tree, leaf_of, color_of);

    // Dataset: 40k records, skewed toward low-index zips.
    let dataset: Vec<u32> = (0..40_000)
        .map(|_| {
            let r: f64 = rng.gen::<f64>();
            ((r * r) * universe_size as f64) as u32
        })
        .collect();

    // ---- Hierarchical histogram (Theorem 8) -------------------------------
    let exact = universe.histogram_counts(&dataset);
    let est = universe.private_histogram_pure(&dataset, PrivacyParams::pure(1.0), 0.1, &mut rng);
    println!("\nTheorem 8 (ε = 1) hierarchical histogram   [true → noisy]");
    println!("  whole country: {:7} → {:9.1}", exact[0], est.values[0]);
    for state in 0..4usize {
        println!("  state {state}:       {:7} → {:9.1}", exact[1 + state], est.values[1 + state]);
    }
    println!(
        "  max error over all {} nodes: {:.1} (analytic bound α = {:.1})",
        est.values.len(),
        est.max_error(&exact),
        est.error_bound,
    );

    // ---- Colored tree counting (Theorem 9) --------------------------------
    let exact_colors = universe.colored_counts(&dataset);
    let est_colors = universe.private_colored_counts_approx(
        &dataset,
        PrivacyParams::approx(1.0, 1e-6),
        0.1,
        &mut rng,
    );
    println!("\nTheorem 9 (ε = 1, δ = 1e-6) distinct colors below each node   [true → noisy]");
    println!("  whole country: {:5} → {:8.1}", exact_colors[0], est_colors.values[0]);
    for state in 0..4usize {
        println!(
            "  state {state}:       {:5} → {:8.1}",
            exact_colors[1 + state],
            est_colors.values[1 + state],
        );
    }
    println!(
        "  max error: {:.1} (analytic bound α = {:.1})",
        est_colors.max_error(&exact_colors),
        est_colors.error_bound,
    );
}
